package raft

import (
	"encoding/binary"
	"fmt"

	"repro/internal/wire"
)

// Raft message kinds, carried as the first payload byte of a
// wire.MsgRaft frame. The frame header's Src/Dst are the replica
// stations, so the payload only carries protocol state.
const (
	rmsgVote        byte = 1 // RequestVote: candidate solicits a vote
	rmsgVoteReply   byte = 2 // VoteReply: grant or refusal
	rmsgAppend      byte = 3 // AppendEntries: replication + heartbeat
	rmsgAppendReply byte = 4 // AppendReply: match index or conflict hint
)

// maxAppendEntries bounds how many log entries one AppendEntries
// frame carries; catch-up of a longer gap takes several rounds.
const maxAppendEntries = 8

// voteMsg is RequestVote (the candidate is the frame's Src).
type voteMsg struct {
	term         uint64
	lastLogIndex uint64
	lastLogTerm  uint64
}

// voteReplyMsg answers a RequestVote.
type voteReplyMsg struct {
	term    uint64
	granted bool
}

// appendMsg is AppendEntries: prevLogIndex/prevLogTerm anchor the
// consistency check, leaderCommit advances the follower's commit
// index, entries may be empty (pure heartbeat).
type appendMsg struct {
	term         uint64
	prevLogIndex uint64
	prevLogTerm  uint64
	leaderCommit uint64
	entries      []Entry
}

// appendReplyMsg answers an AppendEntries. On success matchIndex is
// the last index now known replicated at the follower; on failure it
// is the follower's last log index — the leader's back-off hint.
type appendReplyMsg struct {
	term       uint64
	success    bool
	matchIndex uint64
}

func encodeVote(m voteMsg) []byte {
	b := make([]byte, 1+3*8)
	b[0] = rmsgVote
	binary.BigEndian.PutUint64(b[1:], m.term)
	binary.BigEndian.PutUint64(b[9:], m.lastLogIndex)
	binary.BigEndian.PutUint64(b[17:], m.lastLogTerm)
	return b
}

func decodeVote(p []byte) (voteMsg, error) {
	if len(p) != 1+3*8 {
		return voteMsg{}, fmt.Errorf("raft: bad RequestVote length %d", len(p))
	}
	return voteMsg{
		term:         binary.BigEndian.Uint64(p[1:]),
		lastLogIndex: binary.BigEndian.Uint64(p[9:]),
		lastLogTerm:  binary.BigEndian.Uint64(p[17:]),
	}, nil
}

func encodeVoteReply(m voteReplyMsg) []byte {
	b := make([]byte, 1+8+1)
	b[0] = rmsgVoteReply
	binary.BigEndian.PutUint64(b[1:], m.term)
	if m.granted {
		b[9] = 1
	}
	return b
}

func decodeVoteReply(p []byte) (voteReplyMsg, error) {
	if len(p) != 1+8+1 {
		return voteReplyMsg{}, fmt.Errorf("raft: bad VoteReply length %d", len(p))
	}
	return voteReplyMsg{
		term:    binary.BigEndian.Uint64(p[1:]),
		granted: p[9] == 1,
	}, nil
}

func encodeAppend(m appendMsg) []byte {
	size := 1 + 4*8 + 2
	for _, e := range m.entries {
		size += 8 + 2 + len(e.Cmd)
	}
	b := make([]byte, size)
	b[0] = rmsgAppend
	binary.BigEndian.PutUint64(b[1:], m.term)
	binary.BigEndian.PutUint64(b[9:], m.prevLogIndex)
	binary.BigEndian.PutUint64(b[17:], m.prevLogTerm)
	binary.BigEndian.PutUint64(b[25:], m.leaderCommit)
	binary.BigEndian.PutUint16(b[33:], uint16(len(m.entries)))
	off := 35
	for _, e := range m.entries {
		binary.BigEndian.PutUint64(b[off:], e.Term)
		binary.BigEndian.PutUint16(b[off+8:], uint16(len(e.Cmd)))
		copy(b[off+10:], e.Cmd)
		off += 10 + len(e.Cmd)
	}
	return b
}

func decodeAppend(p []byte) (appendMsg, error) {
	if len(p) < 1+4*8+2 {
		return appendMsg{}, fmt.Errorf("raft: short AppendEntries length %d", len(p))
	}
	m := appendMsg{
		term:         binary.BigEndian.Uint64(p[1:]),
		prevLogIndex: binary.BigEndian.Uint64(p[9:]),
		prevLogTerm:  binary.BigEndian.Uint64(p[17:]),
		leaderCommit: binary.BigEndian.Uint64(p[25:]),
	}
	count := int(binary.BigEndian.Uint16(p[33:]))
	off := 35
	for i := 0; i < count; i++ {
		if len(p) < off+10 {
			return appendMsg{}, fmt.Errorf("raft: truncated entry %d", i)
		}
		term := binary.BigEndian.Uint64(p[off:])
		clen := int(binary.BigEndian.Uint16(p[off+8:]))
		off += 10
		if len(p) < off+clen {
			return appendMsg{}, fmt.Errorf("raft: truncated entry %d command", i)
		}
		cmd := make([]byte, clen)
		copy(cmd, p[off:off+clen])
		off += clen
		m.entries = append(m.entries, Entry{Term: term, Cmd: cmd})
	}
	return m, nil
}

func encodeAppendReply(m appendReplyMsg) []byte {
	b := make([]byte, 1+8+1+8)
	b[0] = rmsgAppendReply
	binary.BigEndian.PutUint64(b[1:], m.term)
	if m.success {
		b[9] = 1
	}
	binary.BigEndian.PutUint64(b[10:], m.matchIndex)
	return b
}

func decodeAppendReply(p []byte) (appendReplyMsg, error) {
	if len(p) != 1+8+1+8 {
		return appendReplyMsg{}, fmt.Errorf("raft: bad AppendReply length %d", len(p))
	}
	return appendReplyMsg{
		term:       binary.BigEndian.Uint64(p[1:]),
		success:    p[9] == 1,
		matchIndex: binary.BigEndian.Uint64(p[10:]),
	}, nil
}

// send transmits one raft message to peer as an unreliable MsgRaft
// frame. Raft is its own retransmission scheme — every heartbeat
// re-offers whatever the follower is missing — so the transport's
// reliable path (acks, retransmit timers) would only add traffic.
func (n *Node) send(peer wire.StationID, payload []byte) {
	n.ctr.FramesSent++
	_, _ = n.ep.Send(wire.Header{Type: wire.MsgRaft, Dst: peer}, payload)
}
