package discovery

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/oid"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Sharded resolves object homes through a placement.Sharder instead
// of per-object state: the home of an object is a pure function of
// its ID, so resolution is a local computation — no cache, no
// broadcast, no controller round trip, no per-object directory entry
// anywhere in the control plane. The fabric forwards on the object ID
// via aggregated shard-prefix rules (see pubsub.CompileShardRoutes);
// when a shard rule has been evicted and the fabric fails the access,
// Invalidate demotes the object to direct unicast-to-home, which
// rides the always-present station tables.
type Sharded struct {
	sharder *placement.Sharder
	// direct holds objects demoted to station-addressed fallback after
	// a route-on-object delivery failure.
	direct   map[oid.ID]struct{}
	counters Counters
}

// NewSharded builds a sharded resolver over the cluster's sharder.
func NewSharded(s *placement.Sharder) *Sharded {
	return &Sharded{sharder: s, direct: make(map[oid.ID]struct{})}
}

// Sharder exposes the underlying shard map.
func (s *Sharded) Sharder() *placement.Sharder { return s.sharder }

// DirectFallbacks reports how many objects this resolver has demoted
// to unicast-to-home.
func (s *Sharded) DirectFallbacks() int { return len(s.direct) }

// Resolve implements Resolver: every resolution is a local hit.
func (s *Sharded) Resolve(obj oid.ID, cb func(Result, error)) {
	s.ResolveCtx(obj, trace.Ctx{}, cb)
}

// ResolveCtx implements Resolver.
func (s *Sharded) ResolveCtx(obj oid.ID, _ trace.Ctx, cb func(Result, error)) {
	s.counters.Resolves++
	s.counters.CacheHits++
	if _, demoted := s.direct[obj]; demoted {
		cb(Result{Station: s.sharder.HomeOf(obj), CacheHit: true}, nil)
		return
	}
	cb(Result{RouteOnObject: true, CacheHit: true}, nil)
}

// Invalidate implements Resolver: a failed route-on-object access
// means the fabric's shard rule is missing (evicted, or lost to a
// table wipe); fall back to addressing the home station directly.
func (s *Sharded) Invalidate(obj oid.ID) {
	s.counters.Invalidations++
	s.direct[obj] = struct{}{}
}

// Announce implements Resolver. Home placement is a function of the
// ID, so there is nothing to advertise.
func (s *Sharded) Announce(oid.ID) { s.counters.Announces++ }

// Withdraw implements Resolver (no-op; see Announce).
func (s *Sharded) Withdraw(oid.ID) {}

// Reset implements Resolver: the direct-fallback set is soft state.
func (s *Sharded) Reset() { s.direct = make(map[oid.ID]struct{}) }

// Counters returns a copy of the resolver statistics.
func (s *Sharded) Counters() Counters { return s.counters }

// ComputeStationRoutes BFSes the topology from every station's host
// and returns, for each switch, the egress port leading toward each
// station. It errors if any switch cannot reach any station. The
// controller scheme uses it to program reply paths; the sharded
// scheme uses it both for station tables and to derive each switch's
// shard-rule egress ports.
func ComputeStationRoutes(net Topology, switches []ProgrammableSwitch,
	stations map[wire.StationID]backend.Device) (map[ProgrammableSwitch]map[wire.StationID]int, error) {
	routes := make(map[ProgrammableSwitch]map[wire.StationID]int, len(switches))
	swSet := make(map[backend.Device]ProgrammableSwitch, len(switches))
	for _, sw := range switches {
		routes[sw] = make(map[wire.StationID]int)
		swSet[sw] = sw
	}
	for st, hostDev := range stations {
		// BFS outward from the host; the first port by which a switch
		// is reached points back toward the host.
		visited := map[backend.Device]bool{hostDev: true}
		queue := []backend.Device{hostDev}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			n := net.NumPorts(cur)
			for p := 0; p < n; p++ {
				peer, peerPort, ok := net.Peer(cur, p)
				if !ok || visited[peer] {
					continue
				}
				visited[peer] = true
				if sw, isSw := swSet[peer]; isSw {
					// peerPort on sw leads back toward the host.
					routes[sw][st] = peerPort
				}
				queue = append(queue, peer)
			}
		}
		// Sanity: every switch must have a route to every station.
		for _, sw := range switches {
			if _, ok := routes[sw][st]; !ok {
				return nil, fmt.Errorf("discovery: switch %s has no route to %s", sw.DevName(), st)
			}
		}
	}
	return routes, nil
}
