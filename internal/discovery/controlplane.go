// ControlPlane: the replicated-controller redesign. The controller's
// object→station map becomes a state machine replicated with
// internal/raft; MsgAnnounce and MsgLocate become proposals to and
// reads from the consensus leader. A single controller is the
// degenerate one-replica case of the same API — no raft node, no
// extra frames, byte-identical behavior to the original design.
package discovery

import (
	"encoding/binary"
	"fmt"

	"repro/internal/backend"
	"repro/internal/oid"
	"repro/internal/raft"
	"repro/internal/wire"
)

// Op is a state-machine command kind.
type Op byte

// Control-plane operations.
const (
	// OpAnnounce records Object as owned by Owner.
	OpAnnounce Op = 1
	// OpForget drops every object owned by Owner (its host crashed).
	OpForget Op = 2
	// OpInstallGroup records a multicast sharer group (Group → Members)
	// for in-network invalidation fan-out; replicating it keeps groups
	// reinstallable after a leader change.
	OpInstallGroup Op = 3
)

// Command is one control-plane state-machine transition. Commands are
// idempotent (map put / bulk delete), which is what makes raft's
// replay-on-restart and ambiguous-proposal semantics safe.
type Command struct {
	Op     Op
	Object oid.ID
	Owner  wire.StationID
	// Group/Members carry an OpInstallGroup's multicast group.
	Group   uint64
	Members []wire.StationID
}

// cmdLen is the fixed encoded size of OpAnnounce/OpForget: op byte,
// object ID, owner station. OpInstallGroup is variable-length:
// op(1) | group(8) | n(2) | members(8n).
const cmdLen = 1 + oid.Size + wire.StationIDSize

func (cmd Command) encode() []byte {
	if cmd.Op == OpInstallGroup {
		b := make([]byte, 1+8+2+wire.StationIDSize*len(cmd.Members))
		b[0] = byte(cmd.Op)
		binary.BigEndian.PutUint64(b[1:], cmd.Group)
		binary.BigEndian.PutUint16(b[9:], uint16(len(cmd.Members)))
		for i, m := range cmd.Members {
			binary.BigEndian.PutUint64(b[11+wire.StationIDSize*i:], uint64(m))
		}
		return b
	}
	b := make([]byte, cmdLen)
	b[0] = byte(cmd.Op)
	cmd.Object.PutBytes(b[1:])
	binary.BigEndian.PutUint64(b[1+oid.Size:], uint64(cmd.Owner))
	return b
}

func decodeCommand(p []byte) (Command, error) {
	if len(p) >= 1 && Op(p[0]) == OpInstallGroup {
		if len(p) < 11 {
			return Command{}, fmt.Errorf("discovery: bad group command length %d", len(p))
		}
		n := int(binary.BigEndian.Uint16(p[9:11]))
		if len(p) != 11+wire.StationIDSize*n {
			return Command{}, fmt.Errorf("discovery: bad group command length %d", len(p))
		}
		cmd := Command{
			Op:      OpInstallGroup,
			Group:   binary.BigEndian.Uint64(p[1:9]),
			Members: make([]wire.StationID, n),
		}
		for i := range cmd.Members {
			cmd.Members[i] = wire.StationID(binary.BigEndian.Uint64(p[11+wire.StationIDSize*i:]))
		}
		return cmd, nil
	}
	if len(p) != cmdLen {
		return Command{}, fmt.Errorf("discovery: bad command length %d", len(p))
	}
	obj, err := oid.FromBytes(p[1:])
	if err != nil {
		return Command{}, err
	}
	return Command{
		Op:     Op(p[0]),
		Object: obj,
		Owner:  wire.StationID(binary.BigEndian.Uint64(p[1+oid.Size:])),
	}, nil
}

// ControlPlane is the controller's service API, independent of how —
// or whether — it is replicated. The Controller implements it in both
// the degenerate single-replica mode (Propose applies synchronously)
// and the raft-replicated mode (Propose commits through consensus).
type ControlPlane interface {
	// Propose submits a state-machine command; done (optional) fires
	// once it is applied, or with an error wrapping
	// gasperr.ErrNotLeader if this replica cannot commit it.
	Propose(cmd Command, done func(error))
	// Lookup reads the applied state: the recorded owner of obj.
	Lookup(obj oid.ID) (wire.StationID, bool)
	// Leader returns the station this replica believes leads (itself,
	// when unreplicated), and whether any leader is known.
	Leader() (wire.StationID, bool)
	// Membership lists every control-plane replica's station.
	Membership() []wire.StationID
}

// notLeaderStatus is the reply status byte a follower replica sends
// for MsgAnnounce/MsgLocate; the payload carries the believed
// leader's station (0 when unknown) for client redirect.
const notLeaderStatus byte = 2

// --- Controller options ---

// ControllerOption configures NewController.
type ControllerOption func(*Controller)

// WithInstallDelay sets the modeled rule-compilation and
// switch-programming latency.
func WithInstallDelay(d backend.Duration) ControllerOption {
	return func(c *Controller) { c.installDelay = d }
}

// WithReplicas declares the full control-plane replica set (this
// replica's own station included). More than one station turns on
// raft replication; exactly one (or omitting the option) is the
// degenerate unreplicated controller.
func WithReplicas(stations ...wire.StationID) ControllerOption {
	return func(c *Controller) { c.replicas = stations }
}

// WithElectionTimeout sets the raft base election timeout (each
// arming draws from [T, 2T)).
func WithElectionTimeout(d backend.Duration) ControllerOption {
	return func(c *Controller) { c.electionTimeout = d }
}

// WithHeartbeat sets the raft leader heartbeat period.
func WithHeartbeat(d backend.Duration) ControllerOption {
	return func(c *Controller) { c.heartbeat = d }
}

// WithSeed perturbs the raft election-jitter PRNG.
func WithSeed(seed uint64) ControllerOption {
	return func(c *Controller) { c.seed = seed }
}

// --- ControlPlane implementation ---

// Propose implements ControlPlane.
func (c *Controller) Propose(cmd Command, done func(error)) {
	if c.raft == nil {
		c.applyCommand(0, cmd.encode())
		if done != nil {
			done(nil)
		}
		return
	}
	c.raft.Propose(cmd.encode(), func(_ uint64, err error) {
		if done != nil {
			done(err)
		}
	})
}

// Lookup implements ControlPlane.
func (c *Controller) Lookup(obj oid.ID) (wire.StationID, bool) {
	owner, ok := c.objects[obj]
	return owner, ok
}

// Leader implements ControlPlane.
func (c *Controller) Leader() (wire.StationID, bool) {
	if c.raft == nil {
		return c.ep.Station(), true
	}
	return c.raft.Leader()
}

// IsLeader reports whether this replica can currently commit
// proposals.
func (c *Controller) IsLeader() bool {
	if c.raft == nil {
		return true
	}
	return c.raft.Running() && c.raft.State() == raft.Leader
}

// Membership implements ControlPlane.
func (c *Controller) Membership() []wire.StationID {
	if len(c.replicas) == 0 {
		return []wire.StationID{c.ep.Station()}
	}
	out := make([]wire.StationID, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// Raft exposes the consensus node (nil for the degenerate
// single-replica controller) for fault injection and invariant
// checking.
func (c *Controller) Raft() *raft.Node { return c.raft }

// applyCommand is the raft Apply hook — and, unreplicated, the direct
// execution path: every committed command mutates the object map
// here, so all replicas converge on the same applied state.
func (c *Controller) applyCommand(_ uint64, p []byte) {
	cmd, err := decodeCommand(p)
	if err != nil {
		return
	}
	switch cmd.Op {
	case OpAnnounce:
		c.objects[cmd.Object] = cmd.Owner
	case OpForget:
		for obj, owner := range c.objects {
			if owner == cmd.Owner {
				delete(c.objects, obj)
			}
		}
	case OpInstallGroup:
		c.groups[cmd.Group] = append([]wire.StationID(nil), cmd.Members...)
	}
}

// GroupProgrammableSwitch is the optional extension a fabric switch
// implements when it can hold multicast group tables (p4sim's Switch
// with an attached INC program).
type GroupProgrammableSwitch interface {
	// InstallIncGroup maps a multicast group ID to its member stations.
	InstallIncGroup(id uint64, members []wire.StationID) error
}

// installGroup programs one multicast group into every switch that
// supports group tables, returning 0 on full success.
func (c *Controller) installGroup(id uint64, members []wire.StationID) byte {
	status := byte(0)
	for _, sw := range c.switches {
		gp, ok := sw.(GroupProgrammableSwitch)
		if !ok {
			continue
		}
		if err := gp.InstallIncGroup(id, members); err != nil {
			c.counters.InstallFailures++
			status = 1
			continue
		}
		c.counters.RulesInstalled++
	}
	return status
}

// handleInstallGroup serves a host's MsgCtrl group-install request:
// commit the group through the control plane (consensus when
// replicated), then program the switches and acknowledge.
func (c *Controller) handleInstallGroup(h *wire.Header, cmd Command) bool {
	req := *h
	if !c.IsLeader() {
		c.respondNotLeader(&req, wire.MsgCtrl)
		return true
	}
	c.Propose(cmd, func(err error) {
		if err != nil {
			// Deposed mid-proposal; the client retries at the new leader
			// (the command is idempotent if it committed anyway).
			c.respondNotLeader(&req, wire.MsgCtrl)
			return
		}
		c.clock.Schedule(c.installDelay, func() {
			status := c.installGroup(cmd.Group, cmd.Members)
			c.ep.Respond(&req, wire.Header{Type: wire.MsgCtrl, Object: req.Object}, []byte{status})
		})
	})
	return true
}

// Groups returns how many multicast groups the control plane tracks.
func (c *Controller) Groups() int { return len(c.groups) }

// onLeaderChange reinstalls every applied object's switch rules when
// this replica wins an election: rules driven by the previous leader
// may be missing or stale, and rule-programming is idempotent.
func (c *Controller) onLeaderChange(_ wire.StationID, self bool) {
	if self {
		c.ReinstallAll()
	}
}

// Crash models this replica's process dying: the raft node loses its
// volatile state (the log and term survive, as if persisted) and the
// applied object map — rebuilt by log replay — is discarded. The
// caller is expected to also cut the replica's link.
func (c *Controller) Crash() {
	if c.raft != nil {
		c.raft.Stop()
	}
	c.objects = make(map[oid.ID]wire.StationID)
	c.groups = make(map[uint64][]wire.StationID)
}

// Restart revives a crashed replica as a follower; catching up on the
// log replays every committed command into the fresh object map.
func (c *Controller) Restart() {
	if c.raft != nil {
		c.raft.Restart()
	}
}

// respondNotLeader answers a client request that reached a follower:
// status byte then the believed leader's station (0 if unknown).
func (c *Controller) respondNotLeader(req *wire.Header, ackType wire.MsgType) {
	reply := make([]byte, 1+wire.StationIDSize)
	reply[0] = notLeaderStatus
	if l, ok := c.Leader(); ok && l != c.ep.Station() {
		binary.BigEndian.PutUint64(reply[1:], uint64(l))
	}
	c.ep.Respond(req, wire.Header{Type: ackType, Object: req.Object}, reply)
}

// handleAnnounceHA is the replicated-mode announce path: the
// ownership record must commit through raft before rules install and
// the ack releases the announcing host.
func (c *Controller) handleAnnounceHA(h *wire.Header) bool {
	req := *h
	if !c.IsLeader() {
		c.respondNotLeader(&req, wire.MsgAnnounceAck)
		return true
	}
	c.counters.Announces++
	obj, owner := req.Object, req.Src
	sp := c.installSpan(&req)
	c.raft.Propose(Command{Op: OpAnnounce, Object: obj, Owner: owner}.encode(),
		func(_ uint64, err error) {
			if err != nil {
				// Deposed mid-proposal: the entry may still commit under
				// the next leader (and the command is idempotent); tell
				// the client to re-announce there.
				sp.SetAttr("status", "not-leader")
				sp.End()
				c.respondNotLeader(&req, wire.MsgAnnounceAck)
				return
			}
			c.clock.Schedule(c.installDelay, func() {
				status := c.installObject(obj, owner)
				sp.SetAttr("status", installStatus(status))
				sp.End()
				c.ep.Respond(&req, wire.Header{Type: wire.MsgAnnounceAck, Object: obj}, []byte{status})
			})
		})
	return true
}

// handleLocateHA is the replicated-mode locate path: a linearizable-
// enough read of the applied map at the leader (followers redirect).
func (c *Controller) handleLocateHA(h *wire.Header) bool {
	req := *h
	if !c.IsLeader() {
		c.respondNotLeader(&req, wire.MsgLocateReply)
		return true
	}
	obj := req.Object
	owner, known := c.objects[obj]
	if !known {
		c.ep.Respond(&req, wire.Header{Type: wire.MsgLocateReply, Object: obj}, []byte{1})
		return true
	}
	sp := c.installSpan(&req)
	c.clock.Schedule(c.installDelay, func() {
		status := c.installObject(obj, owner)
		sp.SetAttr("status", installStatus(status))
		sp.End()
		reply := make([]byte, locateReplyLen)
		reply[0] = status
		binary.BigEndian.PutUint64(reply[1:], uint64(owner))
		c.ep.Respond(&req, wire.Header{Type: wire.MsgLocateReply, Object: obj}, reply)
	})
	return true
}

// --- ControllerClient options ---

// ClientOption configures NewControllerClient.
type ClientOption func(*ControllerClient)

// WithControllers sets the control-plane membership the client
// announces and locates against. With one station the client behaves
// exactly like the original single-controller design; with several it
// follows leader redirects and rotates on timeouts, retrying
// announces that land on followers.
func WithControllers(stations ...wire.StationID) ClientOption {
	return func(cc *ControllerClient) {
		cc.controllers = stations
		if len(stations) > 1 {
			// Announce redirects/timeouts are retried; the budget walks
			// the full membership a few times so one full election fits
			// inside it. Unreplicated keeps the original fire-once path.
			cc.announceRetries = 3 * len(stations)
			cc.locateRetries = 3 * len(stations)
		}
	}
}

// Controllers returns the membership list the client targets.
func (cc *ControllerClient) Controllers() []wire.StationID {
	out := make([]wire.StationID, len(cc.controllers))
	copy(out, cc.controllers)
	return out
}

// Redirects reports how many not-leader replies and membership
// rotations the client has followed.
func (cc *ControllerClient) Redirects() uint64 { return cc.redirects }

// rotate moves to the next membership entry (no-op unreplicated).
func (cc *ControllerClient) rotate() {
	if len(cc.controllers) > 1 {
		cc.cur = (cc.cur + 1) % len(cc.controllers)
	}
}

// redirect follows a not-leader reply's hint, falling back to
// rotation when the follower did not know a leader either.
func (cc *ControllerClient) redirect(payload []byte) {
	cc.redirects++
	if len(payload) >= 1+wire.StationIDSize {
		hint := wire.StationID(binary.BigEndian.Uint64(payload[1:]))
		if hint != 0 {
			for i, st := range cc.controllers {
				if st == hint {
					cc.cur = i
					return
				}
			}
		}
	}
	cc.rotate()
}
