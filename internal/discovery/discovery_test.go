package discovery

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/p4sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(17)

// node bundles a host, endpoint, and object ownership set for tests.
type node struct {
	host *netsim.Host
	ep   *transport.Endpoint
	owns map[oid.ID]bool
}

func (n *node) has(id oid.ID) bool { return n.owns[id] }

// starFabric builds one switch with hosts on ports 0..n-1.
func starFabric(t *testing.T, n int, swCfg p4sim.SwitchConfig) (*netsim.Sim, *netsim.Network, *p4sim.Switch, []*node) {
	t.Helper()
	sim := netsim.NewSim(5)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", n, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{
			host: h,
			ep:   transport.NewEndpoint(h, wire.StationID(i+1), transport.Config{}),
			owns: make(map[oid.ID]bool),
		}
	}
	return sim, net, sw, nodes
}

func TestE2EResolveBroadcast(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 3, p4sim.SwitchConfig{LearnStations: true})
	a, b := nodes[0], nodes[1]
	resA := NewE2E(a.ep, a.has)
	resB := NewE2E(b.ep, b.has)
	a.ep.SetHandler(func(h *wire.Header, p []byte) { resA.HandleFrame(h, p) })
	b.ep.SetHandler(func(h *wire.Header, p []byte) { resB.HandleFrame(h, p) })
	nodes[2].ep.SetHandler(func(h *wire.Header, p []byte) {
		NewE2E(nodes[2].ep, nodes[2].has).HandleFrame(h, p)
	})

	obj := gen.New()
	b.owns[obj] = true

	var got Result
	var gotErr error
	resA.Resolve(obj, func(r Result, err error) { got, gotErr = r, err })
	sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Station != b.ep.Station() {
		t.Fatalf("resolved to %v", got.Station)
	}
	if got.Broadcasts != 1 || got.CacheHit {
		t.Fatalf("result = %+v", got)
	}

	// Second resolve: cache hit, no network.
	var got2 Result
	resA.Resolve(obj, func(r Result, err error) { got2 = r })
	sim.Run()
	if !got2.CacheHit || got2.Station != b.ep.Station() {
		t.Fatalf("second resolve = %+v", got2)
	}
	c := resA.Counters()
	if c.Resolves != 2 || c.CacheHits != 1 || c.CacheMisses != 1 || c.Broadcasts != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if resA.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d", resA.CacheLen())
	}
}

func TestE2EResolveNotFound(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 2, p4sim.SwitchConfig{LearnStations: true})
	a := nodes[0]
	resA := NewE2E(a.ep, a.has)
	resA.SetTimeout(200 * netsim.Microsecond)
	var gotErr error
	resA.Resolve(gen.New(), func(r Result, err error) { gotErr = err })
	sim.Run()
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v", gotErr)
	}
	if resA.Counters().Failures != 1 {
		t.Fatalf("Failures = %d", resA.Counters().Failures)
	}
}

func TestE2EInvalidateForcesRebroadcast(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 3, p4sim.SwitchConfig{LearnStations: true})
	a, b, c := nodes[0], nodes[1], nodes[2]
	resA := NewE2E(a.ep, a.has)
	resB := NewE2E(b.ep, b.has)
	resC := NewE2E(c.ep, c.has)
	b.ep.SetHandler(func(h *wire.Header, p []byte) { resB.HandleFrame(h, p) })
	c.ep.SetHandler(func(h *wire.Header, p []byte) { resC.HandleFrame(h, p) })

	obj := gen.New()
	b.owns[obj] = true
	resA.Resolve(obj, func(Result, error) {})
	sim.Run()

	// Object moves from b to c; a's cache is now stale.
	delete(b.owns, obj)
	c.owns[obj] = true
	resA.Invalidate(obj)
	if resA.Counters().Invalidations != 1 {
		t.Fatal("invalidation not counted")
	}
	var got Result
	resA.Resolve(obj, func(r Result, err error) { got = r })
	sim.Run()
	if got.Station != c.ep.Station() || got.Broadcasts != 1 {
		t.Fatalf("after move: %+v", got)
	}
}

func TestE2EAnnounceLocal(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 2, p4sim.SwitchConfig{})
	a := nodes[0]
	res := NewE2E(a.ep, a.has)
	obj := gen.New()
	a.owns[obj] = true
	res.Announce(obj)
	var got Result
	res.Resolve(obj, func(r Result, err error) { got = r })
	sim.Run()
	if !got.CacheHit || got.Station != a.ep.Station() {
		t.Fatalf("local resolve = %+v", got)
	}
	res.Withdraw(obj)
	if res.CacheLen() != 0 {
		t.Fatal("Withdraw left cache entry")
	}
}

// controllerFabric: 4 interconnected switches in a star (sw0 core),
// hosts on sw1..sw3, controller host on sw0 — the §4 topology shape.
func controllerFabric(t *testing.T) (*netsim.Sim, *netsim.Network, []*p4sim.Switch, []*node, *Controller, *node) {
	t.Helper()
	sim := netsim.NewSim(9)
	net := netsim.NewNetwork(sim)
	link := netsim.LinkConfig{Latency: 5 * netsim.Microsecond}

	sws := make([]*p4sim.Switch, 4)
	var err error
	// sw0 core: ports 0..2 to leaf switches, port 3 to controller.
	if sws[0], err = p4sim.NewSwitch(net, "sw0", 4, p4sim.SwitchConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		// Leaf: port 0 uplink, port 1 host.
		if sws[i], err = p4sim.NewSwitch(net, "sw"+string(rune('0'+i)), 2, p4sim.SwitchConfig{}); err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(sws[0], i-1, sws[i], 0, link); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]*node, 3)
	for i := 0; i < 3; i++ {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(h, 0, sws[i+1], 1, link); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{host: h, ep: transport.NewEndpoint(h, wire.StationID(i+1), transport.Config{}), owns: map[oid.ID]bool{}}
	}
	ch, err := netsim.NewHost(net, "ctrl")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(ch, 0, sws[0], 3, link); err != nil {
		t.Fatal(err)
	}
	ctrlNode := &node{host: ch, ep: transport.NewEndpoint(ch, 100, transport.Config{}), owns: map[oid.ID]bool{}}
	ctrl := NewController(ctrlNode.ep, WithInstallDelay(10*netsim.Microsecond))
	for _, sw := range sws {
		ctrl.AddSwitch(sw)
	}
	stations := map[wire.StationID]netsim.Device{
		1: nodes[0].host, 2: nodes[1].host, 3: nodes[2].host, 100: ctrlNode.host,
	}
	if err := ctrl.ComputeRoutes(net, stations); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.ProgramStationTables(); err != nil {
		t.Fatal(err)
	}
	ctrlNode.ep.SetHandler(func(h *wire.Header, p []byte) { ctrl.HandleFrame(h, p) })
	return sim, net, sws, nodes, ctrl, ctrlNode
}

func TestComputeRoutesStationUnicast(t *testing.T) {
	sim, net, _, nodes, _, _ := controllerFabric(t)
	// With station tables programmed, a unicast from h0 to station 3
	// must not flood: exactly 5 link deliveries (h0→sw1→sw0→sw3→h2 is
	// 4 hops... count frames delivered to node 1's host = 0).
	got := 0
	nodes[2].ep.SetHandler(func(h *wire.Header, p []byte) { got++ })
	other := 0
	nodes[1].ep.SetHandler(func(h *wire.Header, p []byte) { other++ })
	nodes[0].ep.Send(wire.Header{Type: wire.MsgMem, Dst: 3}, []byte("hi"))
	sim.Run()
	if got != 1 || other != 0 {
		t.Fatalf("unicast: target=%d bystander=%d", got, other)
	}
	_ = net
}

func TestControllerAnnounceInstallsRoutes(t *testing.T) {
	sim, _, sws, nodes, ctrl, _ := controllerFabric(t)
	b := nodes[1]
	cc := NewControllerClient(b.ep, WithControllers(100))
	obj := gen.New()
	b.owns[obj] = true
	cc.Announce(obj)
	sim.Run()
	if !cc.Announced(obj) {
		t.Fatal("announce not acked")
	}
	if ctrl.Announces() != 1 {
		t.Fatalf("Announces = %d", ctrl.Announces())
	}
	if ctrl.RulesInstalled() != uint64(len(sws)) {
		t.Fatalf("RulesInstalled = %d", ctrl.RulesInstalled())
	}
	if ctrl.Objects() != 1 {
		t.Fatalf("Objects = %d", ctrl.Objects())
	}
	// Route-on-object frame from h0 reaches h1 (owner) without
	// flooding.
	delivered := 0
	b.ep.SetHandler(func(h *wire.Header, p []byte) { delivered++ })
	bystander := 0
	nodes[2].ep.SetHandler(func(h *wire.Header, p []byte) { bystander++ })
	nodes[0].ep.Send(wire.Header{
		Type: wire.MsgMem, Dst: 2, Flags: wire.FlagRouteOnObject, Object: obj,
	}, nil)
	sim.Run()
	if delivered != 1 || bystander != 0 {
		t.Fatalf("object-routed: owner=%d bystander=%d", delivered, bystander)
	}
}

func TestControllerClientResolveImmediate(t *testing.T) {
	_, _, _, nodes, _, _ := controllerFabric(t)
	cc := NewControllerClient(nodes[0].ep, WithControllers(100))
	var got Result
	called := false
	cc.Resolve(gen.New(), func(r Result, err error) { got, called = r, true })
	if !called || !got.RouteOnObject || !got.CacheHit {
		t.Fatalf("resolve = %+v called=%v", got, called)
	}
	cc.Invalidate(gen.New()) // no-ops must not panic
	cc.Withdraw(gen.New())
	if cc.Counters().Resolves != 1 {
		t.Fatalf("counters = %+v", cc.Counters())
	}
	cc.ResetCounters()
	if cc.Counters().Resolves != 0 {
		t.Fatal("ResetCounters")
	}
}

func TestControllerReannounceAfterMoveRedirects(t *testing.T) {
	sim, _, _, nodes, _, _ := controllerFabric(t)
	b, c := nodes[1], nodes[2]
	ccB := NewControllerClient(b.ep, WithControllers(100))
	ccC := NewControllerClient(c.ep, WithControllers(100))
	obj := gen.New()
	ccB.Announce(obj)
	sim.Run()
	// Move: c re-announces; routes now point to c.
	ccC.Announce(obj)
	sim.Run()
	gotB, gotC := 0, 0
	b.ep.SetHandler(func(*wire.Header, []byte) { gotB++ })
	c.ep.SetHandler(func(*wire.Header, []byte) { gotC++ })
	nodes[0].ep.Send(wire.Header{Type: wire.MsgMem, Dst: 3, Flags: wire.FlagRouteOnObject, Object: obj}, nil)
	sim.Run()
	if gotB != 0 || gotC != 1 {
		t.Fatalf("after move: b=%d c=%d", gotB, gotC)
	}
}

func TestHybridFallsBackAfterInvalidate(t *testing.T) {
	sim, _, _, nodes, _, _ := controllerFabric(t)
	a, b := nodes[0], nodes[1]
	e2eA := NewE2E(a.ep, a.has)
	ccA := NewControllerClient(a.ep, WithControllers(100))
	hy := NewHybrid(ccA, e2eA)

	e2eB := NewE2E(b.ep, b.has)
	b.ep.SetHandler(func(h *wire.Header, p []byte) { e2eB.HandleFrame(h, p) })

	obj := gen.New()
	b.owns[obj] = true

	// Fast path first.
	var r1 Result
	hy.Resolve(obj, func(r Result, err error) { r1 = r })
	if !r1.RouteOnObject {
		t.Fatalf("fast path = %+v", r1)
	}
	// Access failed (e.g., switch table full): demote.
	hy.Invalidate(obj)
	if hy.FallbackCount() != 1 {
		t.Fatalf("FallbackCount = %d", hy.FallbackCount())
	}
	var r2 Result
	var err2 error
	hy.Resolve(obj, func(r Result, err error) { r2, err2 = r, err })
	sim.Run()
	if err2 != nil {
		t.Fatal(err2)
	}
	if r2.RouteOnObject || r2.Station != b.ep.Station() {
		t.Fatalf("fallback resolve = %+v", r2)
	}
	// Withdraw clears the demotion.
	hy.Withdraw(obj)
	if hy.FallbackCount() != 0 {
		t.Fatal("Withdraw did not clear fallback")
	}
	hy.Announce(obj)
	if hy.Counters().Announces != 1 {
		t.Fatalf("counters = %+v", hy.Counters())
	}
	sim.Run()
}

func TestControllerInstallFailureWhenTableFull(t *testing.T) {
	// A switch with a tiny object table: second announce fails.
	sim := netsim.NewSim(5)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw", 2, p4sim.SwitchConfig{
		ObjectTableMemory: 32, // one 32-byte (two-word) entry at 0.87 fill = 0 entries... use 64
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.ObjectTable().Capacity() >= 2 {
		t.Skip("capacity model changed; adjust test budget")
	}
	h0, _ := netsim.NewHost(net, "h0")
	net.Connect(h0, 0, sw, 0, netsim.LinkConfig{Latency: netsim.Microsecond})
	hostEp := transport.NewEndpoint(h0, 1, transport.Config{})
	ch, _ := netsim.NewHost(net, "ctrl")
	net.Connect(ch, 0, sw, 1, netsim.LinkConfig{Latency: netsim.Microsecond})
	ctrlEp := transport.NewEndpoint(ch, 100, transport.Config{})
	ctrl := NewController(ctrlEp)
	ctrl.AddSwitch(sw)
	if err := ctrl.ComputeRoutes(net, map[wire.StationID]netsim.Device{1: h0, 100: ch}); err != nil {
		t.Fatal(err)
	}
	ctrlEp.SetHandler(func(h *wire.Header, p []byte) { ctrl.HandleFrame(h, p) })
	cc := NewControllerClient(hostEp, WithControllers(100))
	for i := 0; i < 3; i++ {
		cc.Announce(gen.New())
	}
	sim.Run()
	if ctrl.InstallFailures() == 0 {
		t.Fatal("expected install failures with full table")
	}
}

// TestClientFollowsLeaderRedirect is the regression test for the
// hardcoded-controller-station bug: a client whose first membership
// entry is a follower must follow the not-leader reply's hint to the
// leader — for announces and for locates — rather than retrying the
// same station forever.
func TestClientFollowsLeaderRedirect(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 4, p4sim.SwitchConfig{LearnStations: true})
	follower, leaderNode := nodes[2], nodes[3] // stations 3 and 4

	// Station 4 is a real (degenerate, always-leading) controller;
	// station 3 plays a deposed follower that knows the leader.
	ctrl := NewController(leaderNode.ep)
	leaderNode.ep.SetHandler(func(h *wire.Header, p []byte) { ctrl.HandleFrame(h, p) })
	follower.ep.SetHandler(func(h *wire.Header, p []byte) {
		if h.Type != wire.MsgAnnounce && h.Type != wire.MsgLocate {
			return
		}
		ack := wire.MsgAnnounceAck
		if h.Type == wire.MsgLocate {
			ack = wire.MsgLocateReply
		}
		reply := make([]byte, 1+wire.StationIDSize)
		reply[0] = notLeaderStatus
		binary.BigEndian.PutUint64(reply[1:], uint64(leaderNode.ep.Station()))
		follower.ep.Respond(h, wire.Header{Type: ack, Object: h.Object}, reply)
	})

	// The announcing client starts at the follower.
	a := nodes[0]
	ccA := NewControllerClient(a.ep, WithControllers(3, 4))
	obj := gen.New()
	a.owns[obj] = true
	var announceErr error
	ccA.AnnounceCB(obj, func(err error) { announceErr = err })
	sim.Run()
	if announceErr != nil {
		t.Fatalf("announce through redirect: %v", announceErr)
	}
	if !ccA.Announced(obj) {
		t.Fatal("announce not acked after redirect")
	}
	if ccA.Redirects() == 0 {
		t.Fatal("client claims it never followed a redirect")
	}
	if ctrl.Objects() != 1 {
		t.Fatalf("leader recorded %d objects", ctrl.Objects())
	}

	// A second client locates through the same redirect.
	b := nodes[1]
	ccB := NewControllerClient(b.ep, WithControllers(3, 4))
	ccB.Invalidate(obj) // stale mark forces a MsgLocate
	var got Result
	var locErr error
	ccB.Resolve(obj, func(r Result, err error) { got, locErr = r, err })
	sim.Run()
	if locErr != nil {
		t.Fatalf("locate through redirect: %v", locErr)
	}
	if !got.RouteOnObject {
		t.Fatalf("locate result = %+v (want route-on-object)", got)
	}
	if ccB.Redirects() == 0 {
		t.Fatal("locate never followed a redirect")
	}

	// Membership accessor reflects the configured replica set.
	if ms := ccA.Controllers(); len(ms) != 2 || ms[0] != 3 || ms[1] != 4 {
		t.Fatalf("Controllers() = %v", ms)
	}
}

// TestClientRotatesWhenLeaderUnknown: a follower that does not know a
// leader (hint 0) forces membership rotation instead of a wedge.
func TestClientRotatesWhenLeaderUnknown(t *testing.T) {
	sim, _, _, nodes := starFabric(t, 4, p4sim.SwitchConfig{LearnStations: true})
	clueless, leaderNode := nodes[2], nodes[3]

	ctrl := NewController(leaderNode.ep)
	leaderNode.ep.SetHandler(func(h *wire.Header, p []byte) { ctrl.HandleFrame(h, p) })
	clueless.ep.SetHandler(func(h *wire.Header, p []byte) {
		if h.Type != wire.MsgAnnounce {
			return
		}
		// Not leader, and no idea who is: an all-zero hint.
		reply := make([]byte, 1+wire.StationIDSize)
		reply[0] = notLeaderStatus
		clueless.ep.Respond(h, wire.Header{Type: wire.MsgAnnounceAck, Object: h.Object}, reply)
	})

	a := nodes[0]
	cc := NewControllerClient(a.ep, WithControllers(3, 4))
	obj := gen.New()
	a.owns[obj] = true
	var announceErr error
	cc.AnnounceCB(obj, func(err error) { announceErr = err })
	sim.Run()
	if announceErr != nil {
		t.Fatalf("announce after rotation: %v", announceErr)
	}
	if !cc.Announced(obj) {
		t.Fatal("announce not acked after rotation")
	}
	if ctrl.Objects() != 1 {
		t.Fatalf("leader recorded %d objects", ctrl.Objects())
	}
}

// TestClientBacksOffWhenAllReplicasUnreachable pins the retry policy
// when the whole control-plane membership is dark (partition, rolling
// crash): the client must terminate after its retry budget, and its
// rotate loop must space attempts with exponential backoff instead of
// hammering the fabric the instant each timeout fires.
func TestClientBacksOffWhenAllReplicasUnreachable(t *testing.T) {
	sim := netsim.NewSim(11)
	net := netsim.NewNetwork(sim)
	sw, err := p4sim.NewSwitch(net, "sw0", 1, p4sim.SwitchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := netsim.NewHost(net, "h0")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(h, 0, sw, 0, netsim.LinkConfig{Latency: 5 * netsim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	// Short request deadlines so the sweep is quick; retransmission is
	// pushed past the deadline so each attempt is one wire frame.
	ep := transport.NewEndpoint(h, 1, transport.Config{
		RequestTimeout:    200 * netsim.Microsecond,
		RetransmitTimeout: netsim.Millisecond,
	})
	// Three controller stations, none attached to the fabric.
	cc := NewControllerClient(ep, WithControllers(50, 51, 52))

	var announceErr error
	done := false
	start := sim.Now()
	cc.AnnounceCB(gen.New(), func(err error) { announceErr = err; done = true })
	sim.Run()
	elapsed := sim.Now().Sub(start)

	if !done {
		t.Fatal("announce never terminated")
	}
	if announceErr == nil {
		t.Fatal("announce succeeded against an unreachable membership")
	}
	// Budget: announceRetries+1 attempts (each at most a few transport
	// retransmissions) — no spin.
	attempts := uint64(cc.announceRetries + 1)
	if in := sw.Counters().FramesIn; in < attempts || in > 4*attempts {
		t.Fatalf("switch saw %d frames for %d attempts", in, attempts)
	}
	// Spacing: the backoff schedule alone (100, 200, 400, ... capped at
	// 2ms) spans well over 10ms across the budget; the pre-backoff
	// client finished in ~attempts*RequestTimeout = 2ms.
	var minSpan netsim.Duration
	for a := 0; a < cc.announceRetries; a++ {
		minSpan += cc.backoff(a)
	}
	if elapsed < minSpan {
		t.Fatalf("announce retries spun: %v elapsed, backoff alone spans %v", elapsed, minSpan)
	}

	// The locate path shares the policy: a stale object against the
	// same dark membership must also back off and terminate.
	obj := gen.New()
	cc.Invalidate(obj)
	var locateErr error
	done = false
	start = sim.Now()
	cc.Resolve(obj, func(_ Result, err error) { locateErr = err; done = true })
	sim.Run()
	elapsed = sim.Now().Sub(start)
	if !done {
		t.Fatal("locate never terminated")
	}
	if !errors.Is(locateErr, ErrNotFound) {
		t.Fatalf("locate error = %v, want ErrNotFound", locateErr)
	}
	minSpan = 0
	for a := 0; a < cc.locateRetries; a++ {
		minSpan += cc.backoff(a)
	}
	if elapsed < minSpan {
		t.Fatalf("locate retries spun: %v elapsed, backoff alone spans %v", elapsed, minSpan)
	}
}
