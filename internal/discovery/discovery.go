// Package discovery implements how the network learns the location of
// objects — the two schemes measured in §4:
//
//   - E2E: a decentralized, ARP-analogous scheme. Each host keeps a
//     destination cache mapping object IDs to stations, populated by
//     broadcasting a DISCOVER on first access. Worst-case 2 RTTs when
//     the cache is cold or stale; broadcasts load the fabric.
//
//   - Controller: an SDN scheme. Hosts ANNOUNCE objects to a
//     controller, which installs object→port rules in every switch so
//     accesses route directly on the object ID: uniform 1 RTT and
//     unicast, at the cost of switch table occupancy.
//
//   - Hybrid: route-on-object fast path with E2E broadcast fallback
//     for objects squeezed out of switch tables (the "combinations of
//     approaches in case of limited hardware capabilities" of §4).
package discovery

import (
	"encoding/binary"
	"fmt"

	"repro/internal/backend"
	"repro/internal/gasperr"
	"repro/internal/oid"
	"repro/internal/raft"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ProgrammableSwitch is the control plane's view of a fabric switch:
// a device whose object and station routing tables the controller can
// program. internal/p4sim's Switch implements it; the interface keeps
// this package independent of any one fabric implementation.
type ProgrammableSwitch interface {
	backend.Device
	// InstallObjectRoute maps an object key to an egress port.
	InstallObjectRoute(key wire.Value, port int) error
	// InstallStationRoute maps a station ID to an egress port.
	InstallStationRoute(st wire.StationID, port int) error
}

// Topology answers connectivity questions about the fabric so the
// controller can compute routes. *netsim.Network implements it.
type Topology interface {
	// NumPorts returns the number of ports dev was registered with.
	NumPorts(dev backend.Device) int
	// Peer returns the device and port on the far side of (dev, port)'s
	// link, if connected.
	Peer(dev backend.Device, port int) (backend.Device, int, bool)
}

// ErrNotFound reports that no host answered for an object. It wraps
// gasperr.ErrNotFound so callers can classify without importing this
// package.
var ErrNotFound = fmt.Errorf("discovery: object not found: %w", gasperr.ErrNotFound)

// locateReplyLen is the payload size of a full MsgLocateReply: a
// status byte followed by the owner's station ID. Failure replies
// carry the status byte alone.
const locateReplyLen = 1 + wire.StationIDSize

// Result is the outcome of a resolution.
type Result struct {
	// Station is the object holder's station (E2E). Unset when
	// RouteOnObject is true.
	Station wire.StationID
	// RouteOnObject means the fabric will forward on the object ID;
	// no station is needed.
	RouteOnObject bool
	// CacheHit reports whether the resolution was answered locally.
	CacheHit bool
	// Broadcasts is the number of broadcast frames this resolution
	// originated (Figure 2's right axis counts these).
	Broadcasts int
}

// Resolver locates objects.
type Resolver interface {
	// Resolve finds obj, calling cb exactly once.
	Resolve(obj oid.ID, cb func(Result, error))
	// ResolveCtx is Resolve carrying a trace context: a sampled
	// operation passes its span so the resolution (and any frames it
	// sends) appears in the operation's span tree. A zero context is
	// equivalent to Resolve.
	ResolveCtx(obj oid.ID, tc trace.Ctx, cb func(Result, error))
	// Invalidate drops any cached location for obj (stale-entry
	// feedback from a failed access).
	Invalidate(obj oid.ID)
	// Announce advertises that this host now holds obj.
	Announce(obj oid.ID)
	// Withdraw retracts an announcement (obj moved away).
	Withdraw(obj oid.ID)
	// Reset drops all soft resolver state (caches, stale marks),
	// modeling a host crash/restart losing its in-memory tables.
	Reset()
}

// Counters aggregates resolver statistics.
type Counters struct {
	Resolves      uint64
	CacheHits     uint64
	CacheMisses   uint64
	Broadcasts    uint64
	Invalidations uint64
	Announces     uint64
	Failures      uint64
	// Relocates counts controller re-resolutions (MsgLocate) issued
	// after a route-on-object delivery failure.
	Relocates uint64
}

// --- E2E scheme ---

// E2E is the decentralized destination-cache resolver.
type E2E struct {
	ep   *transport.Endpoint
	has  func(oid.ID) bool
	auth func(oid.ID) bool

	cache    map[oid.ID]wire.StationID
	timeout  backend.Duration
	fallback backend.Duration
	retries  int
	tracer   *trace.Recorder
	counters Counters
}

// DefaultFallbackDelay is how long a host holding only a cached
// (non-authoritative) copy waits before answering a DISCOVER. The
// authoritative holder answers immediately, so when it is alive its
// reply wins the race and requests converge on it; when it is dead or
// unreachable the delayed reply keeps the object discoverable.
const DefaultFallbackDelay = 100 * backend.Microsecond

// NewE2E creates an E2E resolver over ep. has answers whether this
// host currently holds an object (so it can respond to DISCOVERs).
func NewE2E(ep *transport.Endpoint, has func(oid.ID) bool) *E2E {
	return &E2E{
		ep:       ep,
		has:      has,
		cache:    make(map[oid.ID]wire.StationID),
		timeout:  2 * backend.Millisecond,
		fallback: DefaultFallbackDelay,
		retries:  2,
	}
}

// SetAuthority installs a predicate telling whether this host holds
// the authoritative copy of an object. When set, DISCOVERs for objects
// held only as cached copies are answered after the fallback delay
// instead of immediately — coherence requests that retain state
// (acquires) must reach the home, so discovery must prefer it while it
// is alive. When unset every copy answers immediately.
func (e *E2E) SetAuthority(fn func(oid.ID) bool) { e.auth = fn }

// SetTimeout overrides the per-broadcast discovery timeout.
func (e *E2E) SetTimeout(d backend.Duration) { e.timeout = d }

// SetRetries overrides the rebroadcast count after a lost discovery
// (broadcasts are unacknowledged, so loss is recovered ARP-style by
// asking again).
func (e *E2E) SetRetries(n int) { e.retries = n }

// SetTracer attaches a span recorder for traced resolutions.
func (e *E2E) SetTracer(r *trace.Recorder) { e.tracer = r }

// Counters returns a copy of the statistics.
func (e *E2E) Counters() Counters { return e.counters }

// ResetCounters zeroes the statistics.
func (e *E2E) ResetCounters() { e.counters = Counters{} }

// CacheLen returns the destination cache size.
func (e *E2E) CacheLen() int { return len(e.cache) }

// HandleFrame consumes DISCOVER queries addressed to objects this host
// holds. It returns true if the frame was consumed.
func (e *E2E) HandleFrame(h *wire.Header, payload []byte) bool {
	if h.Type != wire.MsgDiscover {
		return false
	}
	if e.has != nil && e.has(h.Object) {
		if e.auth != nil && !e.auth(h.Object) {
			req := *h
			e.ep.Clock().Schedule(e.fallback, func() {
				e.ep.Respond(&req, wire.Header{Type: wire.MsgDiscoverReply, Object: req.Object}, nil)
			})
			return true
		}
		e.ep.Respond(h, wire.Header{Type: wire.MsgDiscoverReply, Object: h.Object}, nil)
	}
	return true
}

// Resolve implements Resolver: cache hit answers immediately; a miss
// broadcasts a DISCOVER and caches the replying station.
func (e *E2E) Resolve(obj oid.ID, cb func(Result, error)) {
	e.ResolveCtx(obj, trace.Ctx{}, cb)
}

// ResolveCtx implements Resolver with trace propagation: the
// resolution gets a resolve span under tc, and DISCOVER broadcasts
// carry the span so fabric hops attach to it.
func (e *E2E) ResolveCtx(obj oid.ID, tc trace.Ctx, cb func(Result, error)) {
	e.counters.Resolves++
	sp := e.tracer.StartSpan(tc, trace.KindResolve, "resolve:e2e")
	if st, ok := e.cache[obj]; ok {
		e.counters.CacheHits++
		sp.SetAttr("cache", "hit")
		sp.End()
		cb(Result{Station: st, CacheHit: true}, nil)
		return
	}
	e.counters.CacheMisses++
	sp.SetAttr("cache", "miss")
	e.broadcast(obj, 0, sp, func(r Result, err error) {
		sp.End()
		cb(r, err)
	})
}

// broadcast issues one DISCOVER and retries on timeout.
func (e *E2E) broadcast(obj oid.ID, attempt int, sp *trace.Span, cb func(Result, error)) {
	e.counters.Broadcasts++
	hdr := wire.Header{Type: wire.MsgDiscover, Dst: wire.StationBroadcast, Object: obj}
	sp.Ctx().Inject(&hdr)
	_, err := e.ep.Request(hdr, nil, e.timeout,
		func(resp *wire.Header, _ []byte, err error) {
			if err != nil {
				if attempt < e.retries {
					e.broadcast(obj, attempt+1, sp, cb)
					return
				}
				e.counters.Failures++
				cb(Result{Broadcasts: attempt + 1},
					fmt.Errorf("%w: %s (%v)", ErrNotFound, obj.Short(), err))
				return
			}
			e.cache[obj] = resp.Src
			cb(Result{Station: resp.Src, Broadcasts: attempt + 1}, nil)
		})
	if err != nil {
		e.counters.Failures++
		cb(Result{}, err)
	}
}

// Invalidate implements Resolver.
func (e *E2E) Invalidate(obj oid.ID) {
	if _, ok := e.cache[obj]; ok {
		delete(e.cache, obj)
		e.counters.Invalidations++
	}
}

// Announce implements Resolver: a local object is its own cache entry.
func (e *E2E) Announce(obj oid.ID) {
	e.counters.Announces++
	e.cache[obj] = e.ep.Station()
}

// Withdraw implements Resolver.
func (e *E2E) Withdraw(obj oid.ID) { delete(e.cache, obj) }

// Reset implements Resolver: the destination cache is in-memory state
// a crash wipes. The next access per object pays a fresh broadcast.
func (e *E2E) Reset() { e.cache = make(map[oid.ID]wire.StationID) }

// --- Controller scheme ---

// Controller is the SDN control plane: it learns object locations from
// ANNOUNCE messages and programs object→port rules into every switch.
// With WithReplicas it is one replica of a raft-replicated control
// plane; without, the same code runs as the degenerate single replica
// (no consensus node, no extra frames).
type Controller struct {
	ep       *transport.Endpoint
	switches []ProgrammableSwitch
	// routes[sw][station] is the egress port on sw toward station.
	routes map[ProgrammableSwitch]map[wire.StationID]int
	// installDelay models rule-compilation and switch-programming
	// latency on the (out-of-band) control channel.
	installDelay backend.Duration
	clock        backend.Clock
	tracer       *trace.Recorder

	// Replication (empty/nil for the degenerate single controller).
	replicas        []wire.StationID
	electionTimeout backend.Duration
	heartbeat       backend.Duration
	seed            uint64
	raft            *raft.Node

	// objects and groups are the applied state machine: in replicated
	// mode they are only ever mutated by applyCommand, so replicas
	// converge.
	objects map[oid.ID]wire.StationID
	// groups holds the multicast sharer groups installed for
	// in-network invalidation (OpInstallGroup).
	groups   map[uint64][]wire.StationID
	counters struct {
		Announces       uint64
		RulesInstalled  uint64
		InstallFailures uint64
	}
}

// NewController creates a controller bound to ep. Replication, the
// rule-install delay, and raft timing are set through options; the
// zero-option controller is the original unreplicated design.
func NewController(ep *transport.Endpoint, opts ...ControllerOption) *Controller {
	c := &Controller{
		ep:      ep,
		routes:  make(map[ProgrammableSwitch]map[wire.StationID]int),
		clock:   ep.Clock(),
		objects: make(map[oid.ID]wire.StationID),
		groups:  make(map[uint64][]wire.StationID),
	}
	for _, opt := range opts {
		opt(c)
	}
	if len(c.replicas) > 1 {
		c.raft = raft.New(raft.Config{
			Peers:           c.replicas,
			EP:              ep,
			ElectionTimeout: c.electionTimeout,
			Heartbeat:       c.heartbeat,
			Seed:            c.seed,
			Apply:           c.applyCommand,
			OnLeaderChange:  c.onLeaderChange,
		})
	}
	return c
}

// AddSwitch registers a switch the controller programs.
func (c *Controller) AddSwitch(sw ProgrammableSwitch) {
	c.switches = append(c.switches, sw)
	if c.routes[sw] == nil {
		c.routes[sw] = make(map[wire.StationID]int)
	}
}

// SetTracer attaches a span recorder: traced announce/locate requests
// get an install span covering the rule-programming delay.
func (c *Controller) SetTracer(r *trace.Recorder) { c.tracer = r }

// Announces returns the number of announcements processed.
func (c *Controller) Announces() uint64 { return c.counters.Announces }

// RulesInstalled returns the number of switch rules programmed.
func (c *Controller) RulesInstalled() uint64 { return c.counters.RulesInstalled }

// InstallFailures returns the number of rule installs rejected (table
// full).
func (c *Controller) InstallFailures() uint64 { return c.counters.InstallFailures }

// Objects returns how many objects the controller tracks.
func (c *Controller) Objects() int { return len(c.objects) }

// ComputeRoutes BFSes the topology from every station's host to fill
// each switch's station routing (used both for rule installation and
// to pre-program station tables so replies unicast).
func (c *Controller) ComputeRoutes(net Topology, stations map[wire.StationID]backend.Device) error {
	routes, err := ComputeStationRoutes(net, c.switches, stations)
	if err != nil {
		return err
	}
	for sw, m := range routes {
		if c.routes[sw] == nil {
			c.routes[sw] = make(map[wire.StationID]int)
		}
		for st, port := range m {
			c.routes[sw][st] = port
		}
	}
	return nil
}

// ProgramStationTables installs station→port rules on every switch so
// unicast replies forward without flooding or learning.
func (c *Controller) ProgramStationTables() error {
	for _, sw := range c.switches {
		for st, port := range c.routes[sw] {
			if err := sw.InstallStationRoute(st, port); err != nil {
				return err
			}
		}
	}
	return nil
}

// installObject programs obj→owner routes on every switch, returning 0
// on full success and 1 if any switch could not hold the rule.
func (c *Controller) installObject(obj oid.ID, owner wire.StationID) byte {
	status := byte(0)
	for _, sw := range c.switches {
		port, haveRoute := c.routes[sw][owner]
		if !haveRoute {
			c.counters.InstallFailures++
			status = 1
			continue
		}
		if err := sw.InstallObjectRoute(wire.ValueOfID(obj), port); err != nil {
			c.counters.InstallFailures++
			status = 1
			continue
		}
		c.counters.RulesInstalled++
	}
	return status
}

// ReinstallAll replays every tracked object's rules into the switches —
// the controller's bulk repair after a table wipe. It returns the
// number of objects whose rules installed cleanly.
func (c *Controller) ReinstallAll() int {
	ok := 0
	for _, obj := range sortedObjects(c.objects) {
		if c.installObject(obj, c.objects[obj]) == 0 {
			ok++
		}
	}
	// Multicast groups are repaired the same way: a new leader (or a
	// bulk table repair) replays them so in-network invalidation keeps
	// working across control-plane failover.
	ids := make([]uint64, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		c.installGroup(id, c.groups[id])
	}
	return ok
}

// sortedObjects returns the keys of m in deterministic (byte) order so
// repair replays are reproducible run to run.
func sortedObjects(m map[oid.ID]wire.StationID) []oid.ID {
	out := make([]oid.ID, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Forget drops ownership records for objects owned by station st (the
// station crashed and its objects are gone until re-announced). In
// replicated mode the forget is itself a command — every replica must
// drop the records, not just the one that noticed the crash — so it
// routes through Propose (a follower quietly declines; the caller
// retries against the leader).
func (c *Controller) Forget(st wire.StationID) {
	c.Propose(Command{Op: OpForget, Owner: st}, nil)
}

// HandleFrame consumes MsgAnnounce (record ownership, program object
// routes on all switches after installDelay, acknowledge) and
// MsgLocate (demand repair: re-install one object's rules and answer
// with the owner station).
func (c *Controller) HandleFrame(h *wire.Header, payload []byte) bool {
	switch h.Type {
	case wire.MsgAnnounce:
		if c.raft != nil {
			return c.handleAnnounceHA(h)
		}
		c.counters.Announces++
		obj, owner := h.Object, h.Src
		c.objects[obj] = owner
		req := *h
		sp := c.installSpan(&req)
		c.clock.Schedule(c.installDelay, func() {
			status := c.installObject(obj, owner)
			sp.SetAttr("status", installStatus(status))
			sp.End()
			// The ack carries whether rules are fully installed, so hosts
			// can fall back for objects the tables could not hold.
			c.ep.Respond(&req, wire.Header{Type: wire.MsgAnnounceAck, Object: obj}, []byte{status})
		})
		return true
	case wire.MsgLocate:
		if c.raft != nil {
			return c.handleLocateHA(h)
		}
		obj := h.Object
		req := *h
		owner, known := c.objects[obj]
		if !known {
			// Unknown object: answer immediately so the client can fail
			// fast (status 1, no owner).
			c.ep.Respond(&req, wire.Header{Type: wire.MsgLocateReply, Object: obj}, []byte{1})
			return true
		}
		sp := c.installSpan(&req)
		c.clock.Schedule(c.installDelay, func() {
			status := c.installObject(obj, owner)
			sp.SetAttr("status", installStatus(status))
			sp.End()
			reply := make([]byte, locateReplyLen)
			reply[0] = status
			binary.BigEndian.PutUint64(reply[1:], uint64(owner))
			c.ep.Respond(&req, wire.Header{Type: wire.MsgLocateReply, Object: obj}, reply)
		})
		return true
	case wire.MsgCtrl:
		// Group-install request from a coherence home (the only MsgCtrl
		// traffic addressed to the controller station).
		cmd, err := decodeCommand(payload)
		if err != nil || cmd.Op != OpInstallGroup {
			return false
		}
		return c.handleInstallGroup(h, cmd)
	}
	return false
}

// installSpan opens a rule-install span for a traced request: the
// interval from request arrival through the programming delay.
func (c *Controller) installSpan(req *wire.Header) *trace.Span {
	if c.tracer == nil || req.Flags&wire.FlagTraced == 0 {
		return nil
	}
	return c.tracer.StartSpan(trace.Ctx{Trace: req.TraceID, Span: req.SpanID},
		trace.KindInstall, "install:"+req.Type.String())
}

func installStatus(status byte) string {
	if status == 0 {
		return "ok"
	}
	return "partial"
}

// --- Controller client (host side) ---

// ControllerClient is a host's resolver under the controller scheme.
// It targets one station of the control-plane membership at a time,
// following leader redirects and rotating on timeouts when the
// control plane is replicated.
type ControllerClient struct {
	ep *transport.Endpoint
	// controllers is the membership list; cur indexes the replica
	// currently believed to lead.
	controllers []wire.StationID
	cur         int
	redirects   uint64
	counters    Counters
	// acked tracks objects whose announcement completed; failed
	// tracks objects the switch tables could not fully hold.
	acked  map[oid.ID]bool
	failed map[oid.ID]bool
	// stale marks objects whose route-on-object delivery failed; the
	// next Resolve re-locates through the controller instead of
	// trusting the fabric.
	stale           map[oid.ID]bool
	locateTimeout   backend.Duration
	locateRetries   int
	announceRetries int
	// retryDelay spaces retries after a not-leader reply with no
	// usable hint, so a client does not spin while an election runs.
	// Transport-level failures back off exponentially from retryDelay
	// up to maxRetryDelay: with every replica unreachable the client
	// must probe politely, not hammer the membership in a tight
	// rotate loop.
	retryDelay    backend.Duration
	maxRetryDelay backend.Duration
	tracer        *trace.Recorder
}

// NewControllerClient creates a client for the control plane named by
// WithControllers (required: at least one station).
func NewControllerClient(ep *transport.Endpoint, opts ...ClientOption) *ControllerClient {
	cc := &ControllerClient{
		ep:            ep,
		acked:         make(map[oid.ID]bool),
		failed:        make(map[oid.ID]bool),
		stale:         make(map[oid.ID]bool),
		locateTimeout: 2 * backend.Millisecond,
		locateRetries: 2,
		retryDelay:    100 * backend.Microsecond,
		maxRetryDelay: 2 * backend.Millisecond,
	}
	for _, opt := range opts {
		opt(cc)
	}
	if len(cc.controllers) == 0 {
		panic("discovery: NewControllerClient needs WithControllers")
	}
	return cc
}

// Counters returns a copy of the statistics.
func (cc *ControllerClient) Counters() Counters { return cc.counters }

// ResetCounters zeroes the statistics.
func (cc *ControllerClient) ResetCounters() { cc.counters = Counters{} }

// SetTracer attaches a span recorder for traced resolutions.
func (cc *ControllerClient) SetTracer(r *trace.Recorder) { cc.tracer = r }

// Announce implements Resolver: notify the control plane (reliable
// request; the ack confirms rules are active).
func (cc *ControllerClient) Announce(obj oid.ID) { cc.AnnounceCB(obj, nil) }

// AnnounceCB is Announce with completion feedback: cb (optional)
// fires once with nil when the announcement is acknowledged — under a
// replicated control plane, after the record committed — or with the
// final error once the retry budget is spent.
func (cc *ControllerClient) AnnounceCB(obj oid.ID, cb func(error)) {
	cc.counters.Announces++
	cc.announce(obj, 0, cb)
}

func (cc *ControllerClient) announce(obj oid.ID, attempt int, cb func(error)) {
	cc.ep.Request(
		wire.Header{Type: wire.MsgAnnounce, Dst: cc.controllers[cc.cur], Object: obj},
		nil, 0,
		func(resp *wire.Header, payload []byte, err error) {
			delay := backend.Duration(0)
			if err == nil && len(payload) > 0 && payload[0] == notLeaderStatus {
				// A follower answered: aim at the leader it named (or
				// the next replica) and give an election time to settle.
				cc.redirect(payload)
				err = fmt.Errorf("discovery: announce %s: %w", obj.Short(), gasperr.ErrNotLeader)
				delay = cc.retryDelay
			} else if err != nil {
				cc.rotate()
				delay = cc.backoff(attempt)
			}
			if err != nil {
				if attempt < cc.announceRetries {
					cc.ep.Clock().Schedule(delay, func() { cc.announce(obj, attempt+1, cb) })
					return
				}
				if cb != nil {
					cb(err)
				}
				return
			}
			cc.acked[obj] = true
			if len(payload) > 0 && payload[0] != 0 {
				cc.failed[obj] = true
			}
			if cb != nil {
				cb(nil)
			}
		})
}

// Announced reports whether obj's announcement has been acknowledged.
func (cc *ControllerClient) Announced(obj oid.ID) bool { return cc.acked[obj] }

// InstallFailed reports whether the fabric could not fully hold obj's
// rules (table overflow) — the signal the hybrid scheme keys on.
func (cc *ControllerClient) InstallFailed(obj oid.ID) bool { return cc.failed[obj] }

// Resolve implements Resolver: under the controller scheme the fabric
// itself routes on the object ID — resolution is immediate and local.
// Objects marked stale by a failed delivery re-locate through the
// controller first, which re-installs their fabric rules (healing
// wiped or out-of-date tables) before the access is retried.
func (cc *ControllerClient) Resolve(obj oid.ID, cb func(Result, error)) {
	cc.ResolveCtx(obj, trace.Ctx{}, cb)
}

// ResolveCtx implements Resolver with trace propagation.
func (cc *ControllerClient) ResolveCtx(obj oid.ID, tc trace.Ctx, cb func(Result, error)) {
	cc.counters.Resolves++
	sp := cc.tracer.StartSpan(tc, trace.KindResolve, "resolve:controller")
	if cc.stale[obj] {
		cc.counters.CacheMisses++
		sp.SetAttr("stale", "true")
		cc.locate(obj, 0, sp, func(r Result, err error) {
			sp.End()
			cb(r, err)
		})
		return
	}
	cc.counters.CacheHits++
	// The fabric routes on the object ID: resolution is free.
	sp.SetAttr("route-on-object", "true")
	sp.End()
	cb(Result{RouteOnObject: true, CacheHit: true}, nil)
}

// locate asks the control plane where obj lives and waits for its
// rules to be re-installed, retrying on timeout. Under a replicated
// control plane a timeout also rotates to the next replica, and a
// not-leader reply redirects to the leader the follower named — this
// is what lets a client re-discover a moved control plane instead of
// being pinned to one hardcoded station.
func (cc *ControllerClient) locate(obj oid.ID, attempt int, sp *trace.Span, cb func(Result, error)) {
	cc.counters.Relocates++
	hdr := wire.Header{Type: wire.MsgLocate, Dst: cc.controllers[cc.cur], Object: obj}
	sp.Ctx().Inject(&hdr)
	_, err := cc.ep.Request(hdr, nil, cc.locateTimeout,
		func(resp *wire.Header, payload []byte, err error) {
			if err != nil {
				cc.rotate()
				if attempt < cc.locateRetries {
					cc.ep.Clock().Schedule(cc.backoff(attempt), func() {
						cc.locate(obj, attempt+1, sp, cb)
					})
					return
				}
				cc.counters.Failures++
				cb(Result{}, fmt.Errorf("%w: %s (%v)", ErrNotFound, obj.Short(), err))
				return
			}
			if len(payload) >= 1 && payload[0] == notLeaderStatus {
				cc.redirect(payload)
				if attempt < cc.locateRetries {
					cc.ep.Clock().Schedule(cc.retryDelay, func() {
						cc.locate(obj, attempt+1, sp, cb)
					})
					return
				}
				cc.counters.Failures++
				cb(Result{}, fmt.Errorf("discovery: locate %s: %w", obj.Short(), gasperr.ErrNotLeader))
				return
			}
			if len(payload) < 1 || payload[0] != 0 {
				cc.counters.Failures++
				if len(payload) >= locateReplyLen {
					// Owner known but the rules would not fit the tables.
					cc.failed[obj] = true
					cb(Result{}, fmt.Errorf("discovery: locate %s: %w", obj.Short(), gasperr.ErrTableFull))
					return
				}
				// Controller does not know the object (owner crashed and
				// nothing has re-announced it yet).
				cb(Result{}, fmt.Errorf("%w: %s", ErrNotFound, obj.Short()))
				return
			}
			delete(cc.stale, obj)
			cb(Result{RouteOnObject: true}, nil)
		})
	if err != nil {
		cc.counters.Failures++
		cb(Result{}, err)
	}
}

// backoff spaces the attempt'th retry after a transport-level failure:
// exponential from retryDelay, capped at maxRetryDelay.
func (cc *ControllerClient) backoff(attempt int) backend.Duration {
	d := cc.retryDelay
	for i := 0; i < attempt && d < cc.maxRetryDelay; i++ {
		d *= 2
	}
	if d > cc.maxRetryDelay {
		d = cc.maxRetryDelay
	}
	return d
}

// InstallGroup implements coherence.GroupInstaller: ask the control
// plane to program a multicast sharer group into the fabric. Same
// redirect/rotate/backoff policy as announcements; cb fires once with
// the final outcome.
func (cc *ControllerClient) InstallGroup(id uint64, members []wire.StationID, cb func(error)) {
	cc.installGroup(id, members, 0, cb)
}

func (cc *ControllerClient) installGroup(id uint64, members []wire.StationID, attempt int, cb func(error)) {
	cmd := Command{Op: OpInstallGroup, Group: id, Members: members}
	cc.ep.Request(
		wire.Header{Type: wire.MsgCtrl, Dst: cc.controllers[cc.cur]},
		cmd.encode(), 0,
		func(resp *wire.Header, payload []byte, err error) {
			delay := backend.Duration(0)
			if err == nil && len(payload) > 0 && payload[0] == notLeaderStatus {
				cc.redirect(payload)
				err = fmt.Errorf("discovery: install group %d: %w", id, gasperr.ErrNotLeader)
				delay = cc.retryDelay
			} else if err != nil {
				cc.rotate()
				delay = cc.backoff(attempt)
			}
			if err != nil {
				if attempt < cc.announceRetries {
					cc.ep.Clock().Schedule(delay, func() { cc.installGroup(id, members, attempt+1, cb) })
					return
				}
				if cb != nil {
					cb(err)
				}
				return
			}
			if len(payload) > 0 && payload[0] != 0 {
				if cb != nil {
					cb(fmt.Errorf("discovery: install group %d: %w", id, gasperr.ErrTableFull))
				}
				return
			}
			if cb != nil {
				cb(nil)
			}
		})
}

// Invalidate implements Resolver: a failed route-on-object delivery
// marks the object stale so the next Resolve consults the controller.
func (cc *ControllerClient) Invalidate(obj oid.ID) {
	if !cc.stale[obj] {
		cc.stale[obj] = true
		cc.counters.Invalidations++
	}
}

// Withdraw implements Resolver. The rules age out at the controller;
// movement re-announces from the new owner, overwriting routes.
func (cc *ControllerClient) Withdraw(oid.ID) {}

// Reset implements Resolver: announcement acks and stale marks are
// in-memory state a crash wipes. The restarted node re-announces what
// it still holds.
func (cc *ControllerClient) Reset() {
	cc.acked = make(map[oid.ID]bool)
	cc.failed = make(map[oid.ID]bool)
	cc.stale = make(map[oid.ID]bool)
}

// --- Hybrid scheme ---

// Hybrid prefers fabric object-routing and falls back to E2E broadcast
// discovery for objects the switch tables could not hold.
type Hybrid struct {
	e2e *E2E
	cc  *ControllerClient
	// fallback records objects that failed the route-on-object path.
	fallback map[oid.ID]bool
	counters Counters
}

// NewHybrid combines a controller client (fast path) with an E2E
// resolver (fallback).
func NewHybrid(cc *ControllerClient, e2e *E2E) *Hybrid {
	return &Hybrid{e2e: e2e, cc: cc, fallback: make(map[oid.ID]bool)}
}

// Counters returns a copy of the statistics.
func (h *Hybrid) Counters() Counters { return h.counters }

// HandleFrame delegates discovery queries to the E2E side.
func (h *Hybrid) HandleFrame(hd *wire.Header, payload []byte) bool {
	return h.e2e.HandleFrame(hd, payload)
}

// Resolve implements Resolver: objects whose fabric rules failed to
// install (or whose route-on-object access previously failed) use the
// E2E path.
func (h *Hybrid) Resolve(obj oid.ID, cb func(Result, error)) {
	h.ResolveCtx(obj, trace.Ctx{}, cb)
}

// ResolveCtx implements Resolver, delegating to whichever plane
// handles the object (each records its own resolve span).
func (h *Hybrid) ResolveCtx(obj oid.ID, tc trace.Ctx, cb func(Result, error)) {
	h.counters.Resolves++
	if h.fallback[obj] || h.cc.InstallFailed(obj) {
		h.e2e.ResolveCtx(obj, tc, cb)
		return
	}
	h.cc.ResolveCtx(obj, tc, cb)
}

// Invalidate implements Resolver: a failed route-on-object access
// demotes the object to the E2E path.
func (h *Hybrid) Invalidate(obj oid.ID) {
	if !h.fallback[obj] {
		h.fallback[obj] = true
		h.counters.Invalidations++
	}
	h.e2e.Invalidate(obj)
}

// Announce implements Resolver: announce on both planes.
func (h *Hybrid) Announce(obj oid.ID) {
	h.counters.Announces++
	h.cc.Announce(obj)
	h.e2e.Announce(obj)
}

// Withdraw implements Resolver.
func (h *Hybrid) Withdraw(obj oid.ID) {
	h.cc.Withdraw(obj)
	h.e2e.Withdraw(obj)
	delete(h.fallback, obj)
}

// FallbackCount reports how many objects use the E2E fallback path.
func (h *Hybrid) FallbackCount() int { return len(h.fallback) }

// Reset implements Resolver: both planes lose their soft state; the
// fallback set is rebuilt from fresh install feedback.
func (h *Hybrid) Reset() {
	h.cc.Reset()
	h.e2e.Reset()
	h.fallback = make(map[oid.ID]bool)
}
