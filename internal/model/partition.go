package model

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/oid"
)

// Partitioned is a sparse global model split across objects: a root
// object holds a partition table whose entries are cross-object
// references (FOT-encoded) to shard objects, each a self-contained
// model object covering a contiguous feature range. This is the "a
// partition of a sparse global model, located on cloud resource Bob"
// structure of §2, and the cross-object reference graph is exactly
// what the reachability prefetcher (§3.1) walks.
type Partitioned struct {
	Root   *object.Object
	Shards []*object.Object
}

// Root record layout (offset stored in the first 8 bytes after the
// heap base, like BuildObject):
//
//	+0 numShards uint64
//	+8 entries: numShards × 24 { minFeature u64, maxFeature u64, ptr }
//
// where ptr is a cross-object pointer to the shard (offset 0).

// BuildPartitioned splits m into nShards shard objects by contiguous
// feature ranges and builds the root object referencing them.
func BuildPartitioned(g *oid.Generator, m *SparseModel, nShards int) (*Partitioned, error) {
	if nShards <= 0 || nShards > len(m.Buckets) {
		return nil, fmt.Errorf("model: cannot split %d buckets into %d shards", len(m.Buckets), nShards)
	}
	p := &Partitioned{}
	per := (len(m.Buckets) + nShards - 1) / nShards
	type rng struct {
		min, max uint64
		id       oid.ID
	}
	var ranges []rng
	for i := 0; i < len(m.Buckets); i += per {
		end := i + per
		if end > len(m.Buckets) {
			end = len(m.Buckets)
		}
		sub := &SparseModel{
			Name:    fmt.Sprintf("%s/shard%d", m.Name, len(p.Shards)),
			Dim:     m.Dim,
			Buckets: m.Buckets[i:end],
			Output:  m.Output,
		}
		shard, err := BuildObject(g.New(), sub)
		if err != nil {
			return nil, err
		}
		p.Shards = append(p.Shards, shard)
		ranges = append(ranges, rng{
			min: m.Buckets[i].Feature,
			max: m.Buckets[end-1].Feature,
			id:  shard.ID(),
		})
	}

	size := object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap +
		rootSlotSize + 16 + len(ranges)*24 + 64
	root, err := object.New(g.New(), size, 0)
	if err != nil {
		return nil, err
	}
	slot, err := root.Alloc(rootSlotSize, 8)
	if err != nil {
		return nil, err
	}
	rec, err := root.Alloc(8+24*len(ranges), 8)
	if err != nil {
		return nil, err
	}
	if err := root.PutUint64(slot, rec); err != nil {
		return nil, err
	}
	if err := root.PutUint64(rec, uint64(len(ranges))); err != nil {
		return nil, err
	}
	for i, r := range ranges {
		ent := rec + 8 + uint64(24*i)
		if err := root.PutUint64(ent, r.min); err != nil {
			return nil, err
		}
		if err := root.PutUint64(ent+8, r.max); err != nil {
			return nil, err
		}
		if err := root.StoreRef(ent+16, r.id, 0, object.FlagRead); err != nil {
			return nil, err
		}
	}
	p.Root = root
	return p, nil
}

// RootView reads a partition table from a root object.
type RootView struct {
	obj       *object.Object
	rec       uint64
	numShards int
}

// LoadRootView opens a partitioned model's root object.
func LoadRootView(o *object.Object) (*RootView, error) {
	rec, err := o.Uint64(o.HeapBase())
	if err != nil {
		return nil, err
	}
	n, err := o.Uint64(rec)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > 1<<20 {
		return nil, fmt.Errorf("model: absurd shard count %d", n)
	}
	if _, err := o.ReadAt(rec+8, int(n)*24); err != nil {
		return nil, err
	}
	return &RootView{obj: o, rec: rec, numShards: int(n)}, nil
}

// NumShards returns the shard count.
func (rv *RootView) NumShards() int { return rv.numShards }

// entry returns shard i's feature range and reference.
func (rv *RootView) entry(i int) (min, max uint64, ref object.Global, err error) {
	ent := rv.rec + 8 + uint64(24*i)
	if min, err = rv.obj.Uint64(ent); err != nil {
		return
	}
	if max, err = rv.obj.Uint64(ent + 8); err != nil {
		return
	}
	ref, err = rv.obj.LoadRef(ent + 16)
	return
}

// ShardFor resolves the shard reference covering a feature.
func (rv *RootView) ShardFor(feature uint64) (object.Global, error) {
	for i := 0; i < rv.numShards; i++ {
		min, max, ref, err := rv.entry(i)
		if err != nil {
			return object.Global{}, err
		}
		if feature >= min && feature <= max {
			return ref, nil
		}
	}
	return object.Global{}, fmt.Errorf("model: no shard covers feature %d", feature)
}

// Shards lists all shard references in table order.
func (rv *RootView) Shards() ([]object.Global, error) {
	out := make([]object.Global, rv.numShards)
	for i := range out {
		_, _, ref, err := rv.entry(i)
		if err != nil {
			return nil, err
		}
		out[i] = ref
	}
	return out, nil
}

// GroupByShard buckets an activation's features by the shard covering
// each, dropping features outside every shard.
func (rv *RootView) GroupByShard(features []uint64) (map[oid.ID][]uint64, error) {
	out := make(map[oid.ID][]uint64)
	for _, f := range features {
		ref, err := rv.ShardFor(f)
		if err != nil {
			continue
		}
		out[ref.Obj] = append(out[ref.Obj], f)
	}
	return out, nil
}
