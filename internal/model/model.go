// Package model implements the paper's §2 motivating workload: sparse
// personalized ML models whose serving cost is dominated by
// deserializing and loading them into memory ("as much as 70% of the
// processing time").
//
// The same model exists in two encodings:
//
//   - a heap encoding (SparseModel) that must be serialized with
//     package serde to cross a machine boundary and deserialized —
//     allocation plus pointer fixup — on arrival (the RPC baseline);
//
//   - an object-space encoding (BuildObject/View) laid out inside a
//     global-address-space object with invariant pointers, which moves
//     between hosts with a byte-level copy and is usable immediately
//     (§3.1 "alleviating 100% of the loading overhead").
//
// A model is a sparse embedding table: feature ID → weight vector,
// plus an output weight vector. Inference scores an activation (a set
// of feature IDs) by accumulating dot(embedding[f], output).
package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/object"
	"repro/internal/oid"
	"repro/internal/serde"
)

// Bucket is one sparse embedding row.
type Bucket struct {
	Feature uint64
	Weights []float32
}

// SparseModel is the heap (pointer-rich) encoding.
type SparseModel struct {
	Name    string
	Dim     int
	Buckets []Bucket // sorted by Feature
	Output  []float32
}

// NewRandom builds a reproducible random model with numBuckets
// embedding rows of the given dimension.
func NewRandom(seed int64, numBuckets, dim int) *SparseModel {
	rng := rand.New(rand.NewSource(seed))
	m := &SparseModel{
		Name:    fmt.Sprintf("sparse-%d-%dx%d", seed, numBuckets, dim),
		Dim:     dim,
		Buckets: make([]Bucket, numBuckets),
		Output:  make([]float32, dim),
	}
	used := make(map[uint64]bool, numBuckets)
	for i := range m.Buckets {
		f := rng.Uint64() % uint64(numBuckets*16)
		for used[f] {
			f = rng.Uint64() % uint64(numBuckets*16)
		}
		used[f] = true
		w := make([]float32, dim)
		for j := range w {
			w[j] = rng.Float32()*2 - 1
		}
		m.Buckets[i] = Bucket{Feature: f, Weights: w}
	}
	sort.Slice(m.Buckets, func(i, j int) bool { return m.Buckets[i].Feature < m.Buckets[j].Feature })
	for j := range m.Output {
		m.Output[j] = rng.Float32()*2 - 1
	}
	return m
}

// Features returns the model's feature IDs (sorted).
func (m *SparseModel) Features() []uint64 {
	out := make([]uint64, len(m.Buckets))
	for i, b := range m.Buckets {
		out[i] = b.Feature
	}
	return out
}

// lookup finds the bucket for a feature by binary search.
func (m *SparseModel) lookup(f uint64) *Bucket {
	i := sort.Search(len(m.Buckets), func(i int) bool { return m.Buckets[i].Feature >= f })
	if i < len(m.Buckets) && m.Buckets[i].Feature == f {
		return &m.Buckets[i]
	}
	return nil
}

// Infer scores an activation: sum over present features of
// dot(embedding, output), accumulated in float64.
func (m *SparseModel) Infer(features []uint64) float64 {
	var acc float64
	for _, f := range features {
		b := m.lookup(f)
		if b == nil {
			continue
		}
		for j := 0; j < m.Dim; j++ {
			acc += float64(b.Weights[j]) * float64(m.Output[j])
		}
	}
	return acc
}

// Marshal serializes the model with the baseline encoder.
func (m *SparseModel) Marshal() []byte {
	e := serde.NewEncoder(64 + len(m.Buckets)*(12+4*m.Dim) + 4*m.Dim)
	e.PutString(m.Name)
	e.PutUvarint(uint64(m.Dim))
	e.PutFloat32s(m.Output)
	e.PutUvarint(uint64(len(m.Buckets)))
	for _, b := range m.Buckets {
		e.PutUvarint(b.Feature)
		e.PutFloat32s(b.Weights)
	}
	return e.Bytes()
}

// Unmarshal reconstructs a model from Marshal's output: this is the
// allocation-plus-pointer-fixup load path the paper costs out.
func Unmarshal(raw []byte) (*SparseModel, error) {
	d := serde.NewDecoder(raw)
	m := &SparseModel{}
	m.Name = d.String()
	m.Dim = int(d.Uvarint())
	m.Output = d.Float32s()
	n := int(d.Uvarint())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("model: absurd bucket count %d", n)
	}
	m.Buckets = make([]Bucket, n)
	for i := 0; i < n; i++ {
		m.Buckets[i].Feature = d.Uvarint()
		m.Buckets[i].Weights = d.Float32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	return m, d.Err()
}

// --- object-space encoding ---

// Object layout (all offsets relative to the object):
//
//	root record (8-byte aligned):
//	  +0  dim        uint64
//	  +8  numBuckets uint64
//	  +16 ptr        bucket table
//	  +24 ptr        output weights
//	  +32 name       (length-prefixed bytes)
//	bucket table: numBuckets × 16 bytes { feature uint64, ptr weights }
//	weights: dim × 4 bytes (float32 bits), 8-byte aligned
//
// The root record's offset is stored at a well-known slot so a loader
// can find it: the first 8 bytes after the heap base.
const rootSlotSize = 8

var errNotModel = errors.New("model: object does not contain a model")

// ObjectSize returns the object size needed for a model.
func ObjectSize(m *SparseModel) int {
	need := object.HeaderSize + object.FOTEntrySize*object.DefaultFOTCap +
		rootSlotSize +
		48 + len(m.Name) + 16 + // root record + name + padding
		len(m.Buckets)*16 + // bucket table
		(len(m.Buckets)+1)*(4*m.Dim+8) + // weight arrays + alignment
		256
	return need
}

// BuildObject lays the model out inside a fresh object with invariant
// intra-object pointers.
func BuildObject(id oid.ID, m *SparseModel) (*object.Object, error) {
	o, err := object.New(id, ObjectSize(m), 0)
	if err != nil {
		return nil, err
	}
	if err := buildInto(o, m); err != nil {
		return nil, err
	}
	return o, nil
}

// buildInto writes the model into o, recording the root record offset
// in the slot at the heap base.
func buildInto(o *object.Object, m *SparseModel) error {
	slot, err := o.Alloc(rootSlotSize, 8)
	if err != nil {
		return err
	}
	root, err := o.Alloc(32, 8)
	if err != nil {
		return err
	}
	if err := o.PutUint64(slot, root); err != nil {
		return err
	}
	if err := o.PutUint64(root, uint64(m.Dim)); err != nil {
		return err
	}
	if err := o.PutUint64(root+8, uint64(len(m.Buckets))); err != nil {
		return err
	}
	if _, err := o.AllocBytes([]byte(m.Name)); err != nil {
		return err
	}

	// Output weights.
	outOff, err := writeWeights(o, m.Output)
	if err != nil {
		return err
	}
	if err := o.PutPtr(root+24, object.MustPtr(0, outOff)); err != nil {
		return err
	}

	// Bucket table.
	table, err := o.Alloc(16*len(m.Buckets), 8)
	if err != nil {
		return err
	}
	if err := o.PutPtr(root+16, object.MustPtr(0, table)); err != nil {
		return err
	}
	for i, b := range m.Buckets {
		wOff, err := writeWeights(o, b.Weights)
		if err != nil {
			return err
		}
		ent := table + uint64(16*i)
		if err := o.PutUint64(ent, b.Feature); err != nil {
			return err
		}
		if err := o.PutPtr(ent+8, object.MustPtr(0, wOff)); err != nil {
			return err
		}
	}
	return nil
}

func writeWeights(o *object.Object, w []float32) (uint64, error) {
	off, err := o.Alloc(4*len(w), 8)
	if err != nil {
		return 0, err
	}
	for i, v := range w {
		if err := o.PutUint32(off+uint64(4*i), math.Float32bits(v)); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// View is a zero-copy reader over an object-encoded model: it chases
// the encoded pointers directly, with no load step beyond header
// validation.
type View struct {
	obj        *object.Object
	dim        int
	numBuckets int
	table      uint64
	output     uint64
}

// LoadView opens an object-encoded model. This is the entire "load"
// step of the object-space path.
func LoadView(o *object.Object) (*View, error) {
	slot := o.HeapBase()
	root, err := o.Uint64(slot)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errNotModel, err)
	}
	dim, err := o.Uint64(root)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errNotModel, err)
	}
	nb, err := o.Uint64(root + 8)
	if err != nil {
		return nil, err
	}
	tp, err := o.GetPtr(root + 16)
	if err != nil {
		return nil, err
	}
	op, err := o.GetPtr(root + 24)
	if err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<20 || tp.IsNull() || op.IsNull() {
		return nil, errNotModel
	}
	v := &View{
		obj:        o,
		dim:        int(dim),
		numBuckets: int(nb),
		table:      tp.Offset(),
		output:     op.Offset(),
	}
	// Validate bounds once so Infer can read unchecked.
	if _, err := o.ReadAt(v.table, 16*v.numBuckets); err != nil {
		return nil, err
	}
	if _, err := o.ReadAt(v.output, 4*v.dim); err != nil {
		return nil, err
	}
	return v, nil
}

// Dim returns the embedding dimension.
func (v *View) Dim() int { return v.dim }

// NumBuckets returns the number of embedding rows.
func (v *View) NumBuckets() int { return v.numBuckets }

// lookup binary-searches the in-object bucket table.
func (v *View) lookup(f uint64) (uint64, bool) {
	raw := v.obj.Bytes()
	lo, hi := 0, v.numBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		ent := v.table + uint64(16*mid)
		feat := le64(raw[ent:])
		switch {
		case feat < f:
			lo = mid + 1
		case feat > f:
			hi = mid
		default:
			p := object.Ptr(le64(raw[ent+8:]))
			return p.Offset(), true
		}
	}
	return 0, false
}

// Infer scores an activation identically to SparseModel.Infer but
// reading weights straight out of the object bytes.
func (v *View) Infer(features []uint64) float64 {
	raw := v.obj.Bytes()
	var acc float64
	for _, f := range features {
		wOff, ok := v.lookup(f)
		if !ok {
			continue
		}
		for j := 0; j < v.dim; j++ {
			w := math.Float32frombits(le32(raw[wOff+uint64(4*j):]))
			out := math.Float32frombits(le32(raw[v.output+uint64(4*j):]))
			acc += float64(w) * float64(out)
		}
	}
	return acc
}

// Features lists the feature IDs present in the view.
func (v *View) Features() []uint64 {
	raw := v.obj.Bytes()
	out := make([]uint64, v.numBuckets)
	for i := range out {
		out[i] = le64(raw[v.table+uint64(16*i):])
	}
	return out
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
