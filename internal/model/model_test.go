package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/object"
	"repro/internal/oid"
)

var gen = oid.NewSeededGenerator(23)

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(7, 100, 8)
	b := NewRandom(7, 100, 8)
	if a.Infer(a.Features()) != b.Infer(b.Features()) {
		t.Fatal("same seed, different models")
	}
	if len(a.Buckets) != 100 || a.Dim != 8 {
		t.Fatalf("shape: %d buckets dim %d", len(a.Buckets), a.Dim)
	}
	// Sorted, unique features.
	for i := 1; i < len(a.Buckets); i++ {
		if a.Buckets[i-1].Feature >= a.Buckets[i].Feature {
			t.Fatal("features not sorted/unique")
		}
	}
}

func TestInferMissingFeatures(t *testing.T) {
	m := NewRandom(1, 10, 4)
	if m.Infer([]uint64{math.MaxUint64}) != 0 {
		t.Fatal("absent feature contributed")
	}
	if m.Infer(nil) != 0 {
		t.Fatal("empty activation nonzero")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	m := NewRandom(3, 50, 16)
	raw := m.Marshal()
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Dim != m.Dim || len(got.Buckets) != len(m.Buckets) {
		t.Fatal("shape mismatch")
	}
	feats := m.Features()
	if got.Infer(feats) != m.Infer(feats) {
		t.Fatal("inference differs after round trip")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	m := NewRandom(3, 10, 4)
	raw := m.Marshal()
	for _, cut := range []int{0, 1, 5, len(raw) / 2, len(raw) - 1} {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestObjectViewMatchesHeapModel(t *testing.T) {
	m := NewRandom(5, 200, 12)
	o, err := BuildObject(gen.New(), m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := LoadView(o)
	if err != nil {
		t.Fatal(err)
	}
	if v.Dim() != m.Dim || v.NumBuckets() != len(m.Buckets) {
		t.Fatalf("view shape: dim=%d nb=%d", v.Dim(), v.NumBuckets())
	}
	feats := m.Features()
	if got, want := v.Infer(feats), m.Infer(feats); got != want {
		t.Fatalf("view Infer = %v, heap = %v", got, want)
	}
	// Partial activations, including misses.
	acts := [][]uint64{
		feats[:3], feats[len(feats)-3:], {feats[0], math.MaxUint64}, nil,
	}
	for _, a := range acts {
		if v.Infer(a) != m.Infer(a) {
			t.Fatalf("view/heap disagree on %v", a)
		}
	}
	vf := v.Features()
	for i := range feats {
		if vf[i] != feats[i] {
			t.Fatal("view features mismatch")
		}
	}
}

func TestViewSurvivesByteCopy(t *testing.T) {
	// The §3.1 claim: moving the object is a byte copy; the view works
	// immediately on the moved bytes with no fixup.
	m := NewRandom(9, 100, 8)
	o, err := BuildObject(gen.New(), m)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := object.FromBytes(o.ID(), o.CloneBytes())
	if err != nil {
		t.Fatal(err)
	}
	v, err := LoadView(moved)
	if err != nil {
		t.Fatal(err)
	}
	feats := m.Features()
	if v.Infer(feats) != m.Infer(feats) {
		t.Fatal("moved view differs")
	}
}

func TestLoadViewRejectsGarbage(t *testing.T) {
	o, err := object.New(gen.New(), 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadView(o); err == nil {
		t.Fatal("LoadView accepted empty object")
	}
}

func TestPartitionedCoversModel(t *testing.T) {
	m := NewRandom(11, 120, 8)
	p, err := BuildPartitioned(gen, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 4 {
		t.Fatalf("shards = %d", len(p.Shards))
	}
	rv, err := LoadRootView(p.Root)
	if err != nil {
		t.Fatal(err)
	}
	if rv.NumShards() != 4 {
		t.Fatalf("NumShards = %d", rv.NumShards())
	}
	// The root's FOT must reference every shard (reachability graph).
	reach := map[oid.ID]bool{}
	for _, id := range p.Root.Reachable() {
		reach[id] = true
	}
	for _, s := range p.Shards {
		if !reach[s.ID()] {
			t.Fatalf("shard %s not reachable from root", s.ID().Short())
		}
	}
	// Every feature maps to the shard that contains it, and summing
	// per-shard inference equals whole-model inference.
	shardByID := map[oid.ID]*object.Object{}
	for _, s := range p.Shards {
		shardByID[s.ID()] = s
	}
	feats := m.Features()
	groups, err := rv.GroupByShard(feats)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for id, fs := range groups {
		v, err := LoadView(shardByID[id])
		if err != nil {
			t.Fatal(err)
		}
		total += v.Infer(fs)
	}
	want := m.Infer(feats)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("sharded inference %v != %v", total, want)
	}
}

func TestShardForMiss(t *testing.T) {
	m := NewRandom(13, 40, 4)
	p, err := BuildPartitioned(gen, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	rv, _ := LoadRootView(p.Root)
	if _, err := rv.ShardFor(math.MaxUint64); err == nil {
		t.Fatal("ShardFor matched out-of-range feature")
	}
	shards, err := rv.Shards()
	if err != nil || len(shards) != 2 {
		t.Fatalf("Shards = %v, %v", shards, err)
	}
}

func TestBuildPartitionedValidation(t *testing.T) {
	m := NewRandom(1, 10, 4)
	if _, err := BuildPartitioned(gen, m, 0); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if _, err := BuildPartitioned(gen, m, 11); err == nil {
		t.Fatal("accepted more shards than buckets")
	}
}

func TestPropertyViewMatchesHeap(t *testing.T) {
	m := NewRandom(21, 64, 6)
	o, err := BuildObject(gen.New(), m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := LoadView(o)
	if err != nil {
		t.Fatal(err)
	}
	feats := m.Features()
	f := func(picks []uint16) bool {
		act := make([]uint64, 0, len(picks))
		for _, p := range picks {
			if int(p)%2 == 0 {
				act = append(act, feats[int(p)%len(feats)])
			} else {
				act = append(act, uint64(p)) // mostly misses
			}
		}
		return v.Infer(act) == m.Infer(act)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapDeserializeLoad(b *testing.B) {
	m := NewRandom(2, 2000, 32)
	raw := m.Marshal()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectByteCopyLoad(b *testing.B) {
	m := NewRandom(2, 2000, 32)
	o, err := BuildObject(gen.New(), m)
	if err != nil {
		b.Fatal(err)
	}
	raw := o.CloneBytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, len(raw))
		copy(buf, raw)
		mo, err := object.FromBytes(o.ID(), buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := LoadView(mo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewInfer(b *testing.B) {
	m := NewRandom(2, 2000, 32)
	o, _ := BuildObject(gen.New(), m)
	v, _ := LoadView(o)
	feats := m.Features()[:64]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Infer(feats)
	}
}
