package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/oid"
)

var gen = oid.NewSeededGenerator(55)

func sampleHeader() *Header {
	return &Header{
		Type:   MsgMem,
		Flags:  FlagReliable | FlagRouteOnObject,
		Src:    7,
		Dst:    9,
		Object: oid.ID{Hi: 0x1122334455667788, Lo: 0x99AABBCCDDEEFF00},
		Seq:    42,
		Ack:    41,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := sampleHeader()
	payload := []byte("the payload")
	fr, err := Encode(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != HeaderSize+len(payload) {
		t.Fatalf("frame len = %d", len(fr))
	}
	var got Header
	if err := got.DecodeFrom(fr); err != nil {
		t.Fatal(err)
	}
	if got != *h {
		t.Fatalf("decode = %+v, want %+v", got, *h)
	}
	if !bytes.Equal(Payload(fr), payload) {
		t.Fatalf("Payload = %q", Payload(fr))
	}
}

func TestEmptyPayload(t *testing.T) {
	fr, err := Encode(sampleHeader(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != HeaderSize {
		t.Fatalf("frame len = %d", len(fr))
	}
	if Payload(fr) != nil {
		t.Fatal("Payload of empty frame not nil")
	}
}

func TestDecodeErrors(t *testing.T) {
	good, _ := Encode(sampleHeader(), []byte("xyz"))

	var h Header
	if err := h.DecodeFrom(good[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if err := h.DecodeFrom(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[2] = 9
	if err := h.DecodeFrom(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[7] = 32 // header length
	if err := h.DecodeFrom(bad); !errors.Is(err, ErrBadLength) {
		t.Errorf("header length: %v", err)
	}

	// Flipping a payload-length byte must break the checksum.
	bad = append([]byte(nil), good...)
	bad[11] ^= 0x01
	if err := h.DecodeFrom(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("checksum: %v", err)
	}

	// Corrupting any single header byte must be detected.
	for i := 0; i < HeaderSize; i++ {
		bad = append([]byte(nil), good...)
		bad[i] ^= 0xA5
		if err := h.DecodeFrom(bad); err == nil {
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
}

func TestEncodeTooLarge(t *testing.T) {
	if _, err := Encode(sampleHeader(), make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestMarshalIntoShortBuffer(t *testing.T) {
	h := sampleHeader()
	if err := h.MarshalInto(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestPayloadBounds(t *testing.T) {
	if Payload([]byte("short")) != nil {
		t.Fatal("Payload of short frame")
	}
	// Payload length larger than the frame: clamp.
	h := sampleHeader()
	fr, _ := Encode(h, []byte("abcdef"))
	truncated := fr[:HeaderSize+3]
	if got := Payload(truncated); string(got) != "abc" {
		t.Fatalf("clamped payload = %q", got)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgMem.String() != "mem" || MsgDiscover.String() != "discover" {
		t.Fatal("MsgType names wrong")
	}
	if MsgType(200).String() != "msg(200)" {
		t.Fatalf("out-of-range name: %q", MsgType(200).String())
	}
	if MsgInvalid.Valid() || !MsgHello.Valid() || MsgType(100).Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestStationString(t *testing.T) {
	if StationBroadcast.String() != "bcast" {
		t.Fatal("broadcast name")
	}
	if StationID(3).String() != "st3" {
		t.Fatal("station name")
	}
}

func TestFieldWidths(t *testing.T) {
	cases := map[Field]int{
		FieldType: 8, FieldFlags: 16, FieldSrc: 64,
		FieldDst: 64, FieldObject: 128, FieldSeq: 64,
	}
	for f, w := range cases {
		if f.Width() != w {
			t.Errorf("Width(%v) = %d, want %d", f, f.Width(), w)
		}
		if !f.Valid() {
			t.Errorf("Field %v not valid", f)
		}
	}
	if Field(99).Width() != 0 || Field(99).Valid() {
		t.Error("invalid field")
	}
	if FieldObject.String() != "object" || Field(99).String() != "field(99)" {
		t.Error("field names")
	}
}

func TestExtract(t *testing.T) {
	h := sampleHeader()
	v, err := h.Extract(FieldObject)
	if err != nil || v.AsID() != h.Object {
		t.Fatalf("Extract(object) = %v, %v", v, err)
	}
	v, _ = h.Extract(FieldType)
	if v.Lo != uint64(MsgMem) || v.Hi != 0 {
		t.Fatalf("Extract(type) = %v", v)
	}
	v, _ = h.Extract(FieldSrc)
	if v.Lo != 7 {
		t.Fatalf("Extract(src) = %v", v)
	}
	v, _ = h.Extract(FieldDst)
	if v.Lo != 9 {
		t.Fatalf("Extract(dst) = %v", v)
	}
	v, _ = h.Extract(FieldFlags)
	if Flags(v.Lo) != h.Flags {
		t.Fatalf("Extract(flags) = %v", v)
	}
	v, _ = h.Extract(FieldSeq)
	if v.Lo != 42 {
		t.Fatalf("Extract(seq) = %v", v)
	}
	if _, err := h.Extract(Field(99)); err == nil {
		t.Fatal("Extract accepted unknown field")
	}
}

func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(typ uint8, flags uint16, src, dst, hi, lo, seq, ack uint64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := &Header{
			Type: MsgType(typ), Flags: Flags(flags),
			Src: StationID(src), Dst: StationID(dst),
			Object: oid.ID{Hi: hi, Lo: lo}, Seq: seq, Ack: ack,
		}
		fr, err := Encode(h, payload)
		if err != nil {
			return false
		}
		var got Header
		if err := got.DecodeFrom(fr); err != nil {
			return false
		}
		return got == *h && bytes.Equal(Payload(fr), payload) == (len(payload) > 0) ||
			(len(payload) == 0 && got == *h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	h := sampleHeader()
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(h, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	fr, _ := Encode(sampleHeader(), make([]byte, 256))
	var h Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := h.DecodeFrom(fr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTracedHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	h.Flags |= FlagTraced
	h.TraceID, h.SpanID, h.ParentID = 0xA1, 0xB2, 0xC3
	payload := []byte("traced payload")
	fr, err := Encode(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != TracedHeaderSize+len(payload) {
		t.Fatalf("frame len = %d, want %d", len(fr), TracedHeaderSize+len(payload))
	}
	if h.WireLen() != TracedHeaderSize {
		t.Fatalf("WireLen = %d", h.WireLen())
	}
	var got Header
	if err := got.DecodeFrom(fr); err != nil {
		t.Fatal(err)
	}
	if got != *h {
		t.Fatalf("decode = %+v, want %+v", got, *h)
	}
	if !bytes.Equal(Payload(fr), payload) {
		t.Fatalf("Payload = %q", Payload(fr))
	}
	tr, sp, par, ok := TraceContext(fr)
	if !ok || tr != 0xA1 || sp != 0xB2 || par != 0xC3 {
		t.Fatalf("TraceContext = %x %x %x %v", tr, sp, par, ok)
	}
}

func TestTraceContextUntraced(t *testing.T) {
	fr, err := Encode(sampleHeader(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := TraceContext(fr); ok {
		t.Fatal("TraceContext reported trace on untraced frame")
	}
	// Decoding an untraced frame must leave trace fields zero even if
	// the Header struct was previously used for a traced frame.
	h := Header{TraceID: 1, SpanID: 2, ParentID: 3}
	if err := h.DecodeFrom(fr); err != nil {
		t.Fatal(err)
	}
	if h.TraceID != 0 || h.SpanID != 0 || h.ParentID != 0 {
		t.Fatalf("stale trace fields survived decode: %+v", h)
	}
}

func TestTracedFlagLengthConsistency(t *testing.T) {
	h := sampleHeader()
	h.Flags |= FlagTraced
	h.TraceID = 7
	fr, err := Encode(h, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	// Truncating a traced frame to the untraced header length must not
	// decode as a valid untraced frame.
	var got Header
	if err := got.DecodeFrom(fr[:HeaderSize+3]); err == nil {
		t.Fatal("truncated traced frame decoded cleanly")
	}
}
