package wire

import (
	"testing"

	"repro/internal/oid"
)

// FuzzHeaderDecode ensures DecodeFrom never panics and that anything
// it accepts re-encodes to an identical header. Run the corpus with
// plain `go test`; extend it with `go test -fuzz=FuzzHeaderDecode`.
func FuzzHeaderDecode(f *testing.F) {
	good, _ := Encode(&Header{
		Type: MsgMem, Flags: FlagReliable, Src: 1, Dst: 2,
		Object: oid.ID{Hi: 3, Lo: 4}, Seq: 5, Ack: 6,
	}, []byte("payload"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Add(good[:HeaderSize-1])
	mut := append([]byte(nil), good...)
	mut[3] = 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.DecodeFrom(data); err != nil {
			return // rejected is fine; panics are not
		}
		// Accepted headers must round-trip.
		re, err := Encode(&h, Payload(data))
		if err != nil {
			t.Fatalf("re-encode of accepted header failed: %v", err)
		}
		var h2 Header
		if err := h2.DecodeFrom(re); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("round trip changed header: %+v vs %+v", h, h2)
		}
	})
}
