// Package wire defines GASP, the Global Address Space Protocol frame
// format: the "light-weight form of reliable transmission" the paper
// argues for in §3.2, carrying a 128-bit object identifier as the
// routing key so switches forward on data identity rather than host
// addresses.
//
// The layout is a fixed 64-byte header followed by a payload. All
// multi-byte fields are big-endian (network order). Encoding and
// decoding follow the gopacket DecodingLayer style: decode parses a
// header in place with no allocation; the payload is a zero-copy view.
//
//	offset size field
//	0      2    magic (0x6A50)
//	2      1    version (1)
//	3      1    message type
//	4      2    flags
//	6      2    header length (64, or 88 with FlagTraced)
//	8      4    payload length
//	12     4    header checksum (FNV-32a over header with this field zero)
//	16     8    source station
//	24     8    destination station (StationBroadcast floods)
//	32     16   object ID (routing key; may be zero)
//	48     8    sequence number
//	56     8    acknowledgment number
//
// When FlagTraced is set the header grows by a 24-byte trace
// extension, so in-band trace context crosses every hop without a
// side channel (the header-length field is what makes the extension
// negotiable):
//
//	64     8    trace ID
//	72     8    span ID (the sender's current span)
//	80     8    parent span ID
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/oid"
)

// Frame geometry.
const (
	Magic      = 0x6A50
	Version    = 1
	HeaderSize = 64
	// TraceExtSize is the optional trace-context header extension
	// (trace ID + span ID + parent span ID), present iff FlagTraced.
	TraceExtSize = 24
	// TracedHeaderSize is the header size with the trace extension.
	TracedHeaderSize = HeaderSize + TraceExtSize
	// MaxPayload bounds a single frame's payload (jumbo-frame scale);
	// the transport fragments larger transfers.
	MaxPayload = 64 * 1024
)

// StationID identifies an end station (host NIC) for unicast replies.
// Routing decisions in the fabric are made on object IDs; station IDs
// exist so a responder can address the requester directly.
type StationID uint64

// StationIDSize is the encoded size of a StationID in bytes, for
// payloads that carry station IDs outside the frame header.
const StationIDSize = 8

// StationBroadcast floods a frame through the fabric.
const StationBroadcast StationID = ^StationID(0)

// StationAny marks a frame routed purely on its object ID: the fabric
// (not the sender) picks the destination, and whichever station the
// fabric delivers it to should accept it.
const StationAny StationID = 0

// String formats a station ID.
func (s StationID) String() string {
	if s == StationBroadcast {
		return "bcast"
	}
	return fmt.Sprintf("st%d", uint64(s))
}

// MsgType is the top-level message class.
type MsgType uint8

// Message classes. Memory-protocol operations (package memproto) ride
// inside MsgMem payloads; RPC baseline messages ride inside MsgRPC.
const (
	MsgInvalid MsgType = iota
	// MsgHello announces a station to its first-hop switch.
	MsgHello
	// MsgAnnounce advertises object ownership to the controller.
	MsgAnnounce
	// MsgAnnounceAck confirms rule installation.
	MsgAnnounceAck
	// MsgDiscover broadcasts an object-location query (E2E scheme).
	MsgDiscover
	// MsgDiscoverReply answers a MsgDiscover from the object's holder.
	MsgDiscoverReply
	// MsgMem carries a memory-protocol operation (loads/stores, §3.2).
	MsgMem
	// MsgAck is a pure transport acknowledgment.
	MsgAck
	// MsgRPC carries baseline RPC requests and responses.
	MsgRPC
	// MsgCtrl carries controller<->switch rule programming.
	MsgCtrl
	// MsgLocate asks the controller where an object lives after a
	// route-on-object delivery failure (stale or wiped fabric rules).
	MsgLocate
	// MsgLocateReply answers a MsgLocate with the owner's station and
	// confirms the object's fabric rules have been re-installed.
	MsgLocateReply
	// MsgRaft carries control-plane consensus traffic (RequestVote,
	// AppendEntries and their replies) between controller replicas.
	MsgRaft
	// MsgIncInv is a multicast invalidation: one frame from the
	// coherence home carrying the sharer set, replicated along the
	// spanning tree by INC-enabled switches (§5 in-network computation).
	MsgIncInv
	// MsgIncAck acknowledges a MsgIncInv with a sharer bitmap;
	// INC-enabled switches coalesce several into one.
	MsgIncAck

	msgTypeCount
)

// NumMsgTypes is the number of defined message types (including
// MsgInvalid) — the size dispatch tables indexed by MsgType need.
const NumMsgTypes = int(msgTypeCount)

var msgNames = [...]string{
	"invalid", "hello", "announce", "announce-ack", "discover",
	"discover-reply", "mem", "ack", "rpc", "ctrl", "locate",
	"locate-reply", "raft", "inc-inv", "inc-ack",
}

// String names the message type.
func (m MsgType) String() string {
	if int(m) < len(msgNames) {
		return msgNames[m]
	}
	return fmt.Sprintf("msg(%d)", uint8(m))
}

// Valid reports whether m is a defined message type.
func (m MsgType) Valid() bool { return m > MsgInvalid && m < msgTypeCount }

// Flags modify frame handling.
type Flags uint16

const (
	// FlagReliable requests transport acknowledgment.
	FlagReliable Flags = 1 << iota
	// FlagRouteOnObject asks the fabric to forward using the object ID
	// (ignoring the destination station).
	FlagRouteOnObject
	// FlagResponse marks a reply in a request/response exchange.
	FlagResponse
	// FlagTraced indicates the header carries the 24-byte trace
	// extension (TraceID/SpanID/ParentID) after the fixed 64 bytes.
	FlagTraced
)

// Errors returned by frame parsing.
var (
	ErrTruncated   = errors.New("wire: frame truncated")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: header checksum mismatch")
	ErrBadLength   = errors.New("wire: inconsistent lengths")
	ErrTooLarge    = errors.New("wire: payload exceeds MaxPayload")
)

// Header is a decoded GASP header.
type Header struct {
	Type       MsgType
	Flags      Flags
	PayloadLen uint32
	Src        StationID
	Dst        StationID
	Object     oid.ID
	Seq        uint64
	Ack        uint64

	// Trace context, carried on the wire iff FlagTraced is set.
	// SpanID names the span covering this frame's transmission;
	// ParentID is that span's parent on the sending side.
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// WireLen returns the encoded header length implied by the flags:
// HeaderSize, or TracedHeaderSize when FlagTraced is set.
func (h *Header) WireLen() int {
	if h.Flags&FlagTraced != 0 {
		return TracedHeaderSize
	}
	return HeaderSize
}

// fnv32a over b, used as the header checksum.
func fnv32a(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// MarshalInto writes the header into b, which must be at least
// h.WireLen() bytes. It computes the checksum.
func (h *Header) MarshalInto(b []byte) error {
	hdrLen := h.WireLen()
	if len(b) < hdrLen {
		return fmt.Errorf("%w: %d bytes for header", ErrTruncated, len(b))
	}
	if h.PayloadLen > MaxPayload {
		return fmt.Errorf("%w: %d", ErrTooLarge, h.PayloadLen)
	}
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = Version
	b[3] = byte(h.Type)
	binary.BigEndian.PutUint16(b[4:6], uint16(h.Flags))
	binary.BigEndian.PutUint16(b[6:8], uint16(hdrLen))
	binary.BigEndian.PutUint32(b[8:12], h.PayloadLen)
	binary.BigEndian.PutUint32(b[12:16], 0)
	binary.BigEndian.PutUint64(b[16:24], uint64(h.Src))
	binary.BigEndian.PutUint64(b[24:32], uint64(h.Dst))
	h.Object.PutBytes(b[32:48])
	binary.BigEndian.PutUint64(b[48:56], h.Seq)
	binary.BigEndian.PutUint64(b[56:64], h.Ack)
	if hdrLen == TracedHeaderSize {
		binary.BigEndian.PutUint64(b[64:72], h.TraceID)
		binary.BigEndian.PutUint64(b[72:80], h.SpanID)
		binary.BigEndian.PutUint64(b[80:88], h.ParentID)
	}
	binary.BigEndian.PutUint32(b[12:16], fnv32a(b[:hdrLen]))
	return nil
}

// Encode allocates and returns a complete frame (header + payload).
func Encode(h *Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d", ErrTooLarge, len(payload))
	}
	h.PayloadLen = uint32(len(payload))
	hdrLen := h.WireLen()
	fr := make([]byte, hdrLen+len(payload))
	if err := h.MarshalInto(fr); err != nil {
		return nil, err
	}
	copy(fr[hdrLen:], payload)
	return fr, nil
}

// DecodeFrom parses a header from the start of fr, validating magic,
// version, checksum, and length consistency. It does not copy.
func (h *Header) DecodeFrom(fr []byte) error {
	if len(fr) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(fr))
	}
	if binary.BigEndian.Uint16(fr[0:2]) != Magic {
		return ErrBadMagic
	}
	if fr[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, fr[2])
	}
	hdrLen := int(binary.BigEndian.Uint16(fr[6:8]))
	if hdrLen != HeaderSize && hdrLen != TracedHeaderSize {
		return fmt.Errorf("%w: header length %d", ErrBadLength, hdrLen)
	}
	if len(fr) < hdrLen {
		return fmt.Errorf("%w: %d bytes for %d-byte header", ErrTruncated, len(fr), hdrLen)
	}
	h.Flags = Flags(binary.BigEndian.Uint16(fr[4:6]))
	if (h.Flags&FlagTraced != 0) != (hdrLen == TracedHeaderSize) {
		return fmt.Errorf("%w: header length %d does not match flags %#x", ErrBadLength, hdrLen, uint16(h.Flags))
	}
	sum := binary.BigEndian.Uint32(fr[12:16])
	var scratch [TracedHeaderSize]byte
	copy(scratch[:hdrLen], fr[:hdrLen])
	binary.BigEndian.PutUint32(scratch[12:16], 0)
	if fnv32a(scratch[:hdrLen]) != sum {
		return ErrBadChecksum
	}
	h.Type = MsgType(fr[3])
	h.PayloadLen = binary.BigEndian.Uint32(fr[8:12])
	if h.PayloadLen > MaxPayload {
		return fmt.Errorf("%w: %d", ErrTooLarge, h.PayloadLen)
	}
	if hdrLen+int(h.PayloadLen) > len(fr) {
		return fmt.Errorf("%w: payload length %d in %d-byte frame", ErrBadLength, h.PayloadLen, len(fr))
	}
	h.Src = StationID(binary.BigEndian.Uint64(fr[16:24]))
	h.Dst = StationID(binary.BigEndian.Uint64(fr[24:32]))
	var err error
	h.Object, err = oid.FromBytes(fr[32:48])
	if err != nil {
		return err
	}
	h.Seq = binary.BigEndian.Uint64(fr[48:56])
	h.Ack = binary.BigEndian.Uint64(fr[56:64])
	if hdrLen == TracedHeaderSize {
		h.TraceID = binary.BigEndian.Uint64(fr[64:72])
		h.SpanID = binary.BigEndian.Uint64(fr[72:80])
		h.ParentID = binary.BigEndian.Uint64(fr[80:88])
	} else {
		h.TraceID, h.SpanID, h.ParentID = 0, 0, 0
	}
	return nil
}

// HeaderLen reports the encoded header length of a frame whose header
// has already been validated.
func HeaderLen(fr []byte) int {
	if len(fr) >= TracedHeaderSize &&
		Flags(binary.BigEndian.Uint16(fr[4:6]))&FlagTraced != 0 {
		return TracedHeaderSize
	}
	return HeaderSize
}

// Payload returns a zero-copy view of the payload of a frame whose
// header has already been validated.
func Payload(fr []byte) []byte {
	hdrLen := HeaderLen(fr)
	if len(fr) <= hdrLen {
		return nil
	}
	n := binary.BigEndian.Uint32(fr[8:12])
	end := hdrLen + int(n)
	if end > len(fr) {
		end = len(fr)
	}
	return fr[hdrLen:end]
}

// PeekDst extracts the destination station from a frame without a
// full header decode — the per-frame fast path a backend uses to route
// (the realnet UDP backend picks the peer socket from it). ok is
// false for frames too short to carry a header.
func PeekDst(fr []byte) (StationID, bool) {
	if len(fr) < HeaderSize {
		return 0, false
	}
	return StationID(binary.BigEndian.Uint64(fr[24:32])), true
}

// TraceContext extracts the trace extension from a frame without a
// full header decode — the per-hop fast path for switch and link
// instrumentation. ok is false for untraced or too-short frames.
func TraceContext(fr []byte) (traceID, spanID, parentID uint64, ok bool) {
	if len(fr) < TracedHeaderSize ||
		Flags(binary.BigEndian.Uint16(fr[4:6]))&FlagTraced == 0 {
		return 0, 0, 0, false
	}
	return binary.BigEndian.Uint64(fr[64:72]),
		binary.BigEndian.Uint64(fr[72:80]),
		binary.BigEndian.Uint64(fr[80:88]),
		true
}

// Field identifies a header field for match-action pipelines and
// packet subscriptions (the "user-defined packet formats" of Packet
// Subscriptions [17]).
type Field uint8

// Matchable header fields.
const (
	FieldType Field = iota
	FieldFlags
	FieldSrc
	FieldDst
	FieldObject
	FieldSeq

	fieldCount
)

var fieldNames = [...]string{"type", "flags", "src", "dst", "object", "seq"}

// String names the field.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// Valid reports whether f is a defined field.
func (f Field) Valid() bool { return f < fieldCount }

// Width returns the field's width in bits — what the switch's table
// key consumes (the §3.2 capacity experiment hinges on FieldObject
// being 128 bits wide).
func (f Field) Width() int {
	switch f {
	case FieldType:
		return 8
	case FieldFlags:
		return 16
	case FieldSrc, FieldDst, FieldSeq:
		return 64
	case FieldObject:
		return 128
	default:
		return 0
	}
}

// Value is a field value up to 128 bits wide.
type Value struct {
	Hi, Lo uint64
}

// ValueOf builds a Value from a uint64.
func ValueOf(v uint64) Value { return Value{Lo: v} }

// ValueOfID builds a Value from an object ID.
func ValueOfID(id oid.ID) Value { return Value{Hi: id.Hi, Lo: id.Lo} }

// AsID converts the value back to an object ID.
func (v Value) AsID() oid.ID { return oid.ID{Hi: v.Hi, Lo: v.Lo} }

// Extract pulls a field's value out of a decoded header.
func (h *Header) Extract(f Field) (Value, error) {
	switch f {
	case FieldType:
		return ValueOf(uint64(h.Type)), nil
	case FieldFlags:
		return ValueOf(uint64(h.Flags)), nil
	case FieldSrc:
		return ValueOf(uint64(h.Src)), nil
	case FieldDst:
		return ValueOf(uint64(h.Dst)), nil
	case FieldObject:
		return ValueOfID(h.Object), nil
	case FieldSeq:
		return ValueOf(h.Seq), nil
	default:
		return Value{}, fmt.Errorf("wire: unknown field %d", f)
	}
}
