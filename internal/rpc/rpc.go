// Package rpc is the baseline the paper argues against: traditional
// location- and compute-centric remote procedure calls. The caller
// names an explicit endpoint (a station), arguments and results are
// serialized in their entirety and shipped by value, and reference
// data must already live on the executor (§1, §2).
//
// It is implemented over the same simulated network and lightweight
// transport as the data-centric stack so the Figure 1 and §2
// comparisons are apples-to-apples. Large arguments and results are
// chunked across frames, with serialization costs paid in full on
// both sides.
package rpc

import (
	"errors"
	"fmt"

	"repro/internal/backend"
	"repro/internal/serde"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Errors surfaced by calls.
var (
	ErrNoMethod  = errors.New("rpc: no such method")
	ErrRemote    = errors.New("rpc: remote error")
	ErrTransport = errors.New("rpc: transport failure")
)

// message kinds.
const (
	kindRequest  = 1
	kindResponse = 2
)

// statuses.
const (
	statusOK       = 0
	statusAppError = 1
	statusNoMethod = 2
)

// chunkData bounds per-frame payload data, leaving room for headers.
const chunkData = 60 * 1024

// Handler serves one method: args in, result out.
type Handler func(args []byte) ([]byte, error)

// AsyncHandler serves one method whose work completes later (e.g. it
// must fetch objects first); it must call reply exactly once.
type AsyncHandler func(args []byte, reply func(result []byte, err error))

// envelope is the wire encoding of one RPC frame.
type envelope struct {
	kind    uint8
	status  uint8
	callID  uint64
	method  string
	fragOff uint64
	total   uint64
	data    []byte
}

func (ev *envelope) marshal() []byte {
	e := serde.NewEncoder(64 + len(ev.data))
	e.PutUvarint(uint64(ev.kind))
	e.PutUvarint(uint64(ev.status))
	e.PutUint64(ev.callID)
	e.PutString(ev.method)
	e.PutUint64(ev.fragOff)
	e.PutUint64(ev.total)
	e.PutBytes(ev.data)
	return e.Bytes()
}

func (ev *envelope) unmarshal(b []byte) error {
	d := serde.NewDecoder(b)
	ev.kind = uint8(d.Uvarint())
	ev.status = uint8(d.Uvarint())
	ev.callID = d.Uint64()
	ev.method = d.String()
	ev.fragOff = d.Uint64()
	ev.total = d.Uint64()
	ev.data = d.Bytes()
	return d.Err()
}

// assembly accumulates chunked bodies.
type assembly struct {
	buf      []byte
	received uint64
}

func (a *assembly) add(ev *envelope) (bool, error) {
	if a.buf == nil {
		a.buf = make([]byte, ev.total)
	}
	if uint64(len(a.buf)) != ev.total {
		return false, fmt.Errorf("rpc: inconsistent chunk totals")
	}
	if ev.fragOff+uint64(len(ev.data)) > ev.total {
		return false, fmt.Errorf("rpc: chunk out of range")
	}
	copy(a.buf[ev.fragOff:], ev.data)
	a.received += uint64(len(ev.data))
	return a.received >= ev.total, nil
}

// Counters aggregates RPC statistics.
type Counters struct {
	CallsSent    uint64
	CallsServed  uint64
	AppErrors    uint64
	NoMethod     uint64
	BytesArgs    uint64
	BytesResults uint64
}

// Server dispatches registered methods.
type Server struct {
	ep       *transport.Endpoint
	handlers map[string]Handler
	async    map[string]AsyncHandler
	inbound  map[callKey]*assembly
	counters Counters
}

type callKey struct {
	src wire.StationID
	id  uint64
}

// NewServer creates a server over an endpoint.
func NewServer(ep *transport.Endpoint) *Server {
	return &Server{
		ep:       ep,
		handlers: make(map[string]Handler),
		async:    make(map[string]AsyncHandler),
		inbound:  make(map[callKey]*assembly),
	}
}

// Register installs a handler; re-registering a name replaces it.
func (s *Server) Register(method string, h Handler) {
	s.handlers[method] = h
}

// RegisterAsync installs an asynchronous handler.
func (s *Server) RegisterAsync(method string, h AsyncHandler) {
	s.async[method] = h
}

// Counters returns a copy of the server statistics.
func (s *Server) Counters() Counters { return s.counters }

// HandleFrame consumes MsgRPC request frames; returns true if consumed.
func (s *Server) HandleFrame(h *wire.Header, payload []byte) bool {
	if h.Type != wire.MsgRPC {
		return false
	}
	var ev envelope
	if err := ev.unmarshal(payload); err != nil {
		return true
	}
	if ev.kind != kindRequest {
		return false // a response; let a client on the same station take it
	}
	key := callKey{src: h.Src, id: ev.callID}
	a, ok := s.inbound[key]
	if !ok {
		a = &assembly{}
		s.inbound[key] = a
	}
	done, err := a.add(&ev)
	if err != nil {
		delete(s.inbound, key)
		return true
	}
	if !done {
		return true
	}
	delete(s.inbound, key)
	s.counters.CallsServed++
	s.counters.BytesArgs += uint64(len(a.buf))
	s.dispatch(h, &ev, a.buf)
	return true
}

func (s *Server) dispatch(req *wire.Header, ev *envelope, args []byte) {
	if ah, ok := s.async[ev.method]; ok {
		reqCopy := *req
		evCopy := *ev
		ah(args, func(result []byte, err error) {
			if err != nil {
				s.counters.AppErrors++
				s.sendResult(&reqCopy, &evCopy, statusAppError, []byte(err.Error()))
				return
			}
			s.sendResult(&reqCopy, &evCopy, statusOK, result)
		})
		return
	}
	handler, ok := s.handlers[ev.method]
	var status uint8
	var result []byte
	if !ok {
		s.counters.NoMethod++
		status, result = statusNoMethod, []byte(ev.method)
	} else if res, err := handler(args); err != nil {
		s.counters.AppErrors++
		status, result = statusAppError, []byte(err.Error())
	} else {
		status, result = statusOK, res
	}
	s.sendResult(req, ev, status, result)
}

func (s *Server) sendResult(req *wire.Header, ev *envelope, status uint8, result []byte) {
	s.counters.BytesResults += uint64(len(result))

	total := uint64(len(result))
	// Stream all but the final chunk as plain frames; the final chunk
	// rides the matched response.
	off := uint64(0)
	for total-off > chunkData {
		chunk := &envelope{
			kind: kindResponse, status: status, callID: ev.callID,
			fragOff: off, total: total, data: result[off : off+chunkData],
		}
		s.ep.SendReliable(wire.Header{Type: wire.MsgRPC, Dst: req.Src}, chunk.marshal(), nil)
		off += chunkData
	}
	last := &envelope{
		kind: kindResponse, status: status, callID: ev.callID,
		fragOff: off, total: total, data: result[off:],
	}
	s.ep.Respond(req, wire.Header{Type: wire.MsgRPC}, last.marshal())
}

// Client issues calls to explicit endpoints.
type Client struct {
	ep       *transport.Endpoint
	nextCall uint64
	inbound  map[uint64]*clientCall
	tracer   *trace.Recorder
	counters Counters
}

type clientCall struct {
	asm    assembly
	status uint8
	// final indicates the matched response arrived; data chunks may
	// still be outstanding (they arrive before it on a FIFO link, but
	// reordering across retransmits is possible).
	cb func([]byte, error)
}

// NewClient creates a client over an endpoint.
func NewClient(ep *transport.Endpoint) *Client {
	return &Client{ep: ep, inbound: make(map[uint64]*clientCall)}
}

// Counters returns a copy of the client statistics.
func (c *Client) Counters() Counters { return c.counters }

// SetTracer attaches a span recorder: calls become trace roots (or
// children, when the caller supplies a context via CallCtx).
func (c *Client) SetTracer(r *trace.Recorder) { c.tracer = r }

// HandleFrame consumes MsgRPC response chunks that precede the matched
// final response; returns true if consumed.
func (c *Client) HandleFrame(h *wire.Header, payload []byte) bool {
	if h.Type != wire.MsgRPC {
		return false
	}
	var ev envelope
	if err := ev.unmarshal(payload); err != nil {
		return true
	}
	if ev.kind != kindResponse {
		return false
	}
	call, ok := c.inbound[ev.callID]
	if !ok {
		return true // late chunk for a finished call
	}
	c.ingest(call, &ev)
	return true
}

func (c *Client) ingest(call *clientCall, ev *envelope) {
	done, err := call.asm.add(ev)
	if err != nil {
		c.finish(ev.callID, call, nil, err)
		return
	}
	call.status = ev.status
	if done {
		c.finish(ev.callID, call, call.asm.buf, nil)
	}
}

func (c *Client) finish(id uint64, call *clientCall, result []byte, err error) {
	delete(c.inbound, id)
	if err != nil {
		call.cb(nil, err)
		return
	}
	switch call.status {
	case statusOK:
		c.counters.BytesResults += uint64(len(result))
		call.cb(result, nil)
	case statusNoMethod:
		call.cb(nil, fmt.Errorf("%w: %s", ErrNoMethod, result))
	default:
		c.counters.AppErrors++
		call.cb(nil, fmt.Errorf("%w: %s", ErrRemote, result))
	}
}

// Call invokes method at dst with serialized args; cb receives the
// result or an error. Arguments of any size are chunked.
func (c *Client) Call(dst wire.StationID, method string, args []byte, cb func([]byte, error)) {
	c.CallCtx(dst, method, args, 0, trace.Ctx{}, cb)
}

// CallWithTimeout is Call with an explicit response deadline (0 scales
// the default with argument size).
func (c *Client) CallWithTimeout(dst wire.StationID, method string, args []byte,
	timeout backend.Duration, cb func([]byte, error)) {
	c.CallCtx(dst, method, args, timeout, trace.Ctx{}, cb)
}

// CallCtx is CallWithTimeout with an explicit trace context: when tc
// carries a sampled trace the call's span parents under it (so e.g. an
// Invoke's RPC leg nests inside the invoke root); a zero tc makes the
// call its own sampled root.
func (c *Client) CallCtx(dst wire.StationID, method string, args []byte,
	timeout backend.Duration, tc trace.Ctx, cb func([]byte, error)) {

	var sp *trace.Span
	if tc.Traced() {
		sp = c.tracer.StartSpan(tc, trace.KindRPC, "rpc:"+method)
	} else {
		sp = c.tracer.StartRoot("rpc:" + method)
	}
	if sp != nil {
		inner := cb
		cb = func(result []byte, err error) {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
			inner(result, err)
		}
	}
	ctx := sp.Ctx()
	c.nextCall++
	id := c.nextCall
	c.counters.CallsSent++
	c.counters.BytesArgs += uint64(len(args))

	total := uint64(len(args))
	off := uint64(0)
	for total-off > chunkData {
		chunk := &envelope{
			kind: kindRequest, callID: id, method: method,
			fragOff: off, total: total, data: args[off : off+chunkData],
		}
		ch := wire.Header{Type: wire.MsgRPC, Dst: dst}
		ctx.Inject(&ch)
		c.ep.SendReliable(ch, chunk.marshal(), nil)
		off += chunkData
	}
	last := &envelope{
		kind: kindRequest, callID: id, method: method,
		fragOff: off, total: total, data: args[off:],
	}
	if timeout == 0 {
		timeout = requestTimeoutFor(len(args))
	}
	call := &clientCall{cb: cb}
	c.inbound[id] = call
	lh := wire.Header{Type: wire.MsgRPC, Dst: dst}
	ctx.Inject(&lh)
	c.ep.Request(lh, last.marshal(),
		timeout,
		func(resp *wire.Header, payload []byte, err error) {
			if err != nil {
				if _, live := c.inbound[id]; live {
					// Both %w: callers match ErrTransport for the layer and
					// the wrapped transport error for its gasperr class.
					c.finish(id, call, nil, fmt.Errorf("%w: %w", ErrTransport, err))
				}
				return
			}
			var ev envelope
			if uerr := ev.unmarshal(payload); uerr != nil {
				c.finish(id, call, nil, uerr)
				return
			}
			if _, live := c.inbound[id]; live {
				c.ingest(call, &ev)
			}
		})
}

// requestTimeoutFor scales the request deadline with transfer size so
// chunked megabyte calls do not spuriously time out.
func requestTimeoutFor(n int) backend.Duration {
	base := 20 * backend.Millisecond
	per := backend.Duration(n/chunkData) * 5 * backend.Millisecond
	return base + per
}
