package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

type rig struct {
	sim    *netsim.Sim
	client *Client
	server *Server
}

func newRig(t *testing.T, link netsim.LinkConfig) *rig {
	t.Helper()
	sim := netsim.NewSim(19)
	net := netsim.NewNetwork(sim)
	ha, err := netsim.NewHost(net, "client")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := netsim.NewHost(net, "server")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(ha, 0, hb, 0, link); err != nil {
		t.Fatal(err)
	}
	epA := transport.NewEndpoint(ha, 1, transport.Config{})
	epB := transport.NewEndpoint(hb, 2, transport.Config{})
	client := NewClient(epA)
	server := NewServer(epB)
	epA.SetHandler(func(h *wire.Header, p []byte) { client.HandleFrame(h, p) })
	epB.SetHandler(func(h *wire.Header, p []byte) { server.HandleFrame(h, p) })
	return &rig{sim: sim, client: client, server: server}
}

func TestCallEcho(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Latency: 5 * netsim.Microsecond})
	r.server.Register("echo", func(args []byte) ([]byte, error) {
		return append([]byte("echo:"), args...), nil
	})
	var got []byte
	var gotErr error
	r.client.Call(2, "echo", []byte("hi"), func(res []byte, err error) {
		got, gotErr = res, err
	})
	r.sim.Run()
	if gotErr != nil || string(got) != "echo:hi" {
		t.Fatalf("result = %q, %v", got, gotErr)
	}
	if r.server.Counters().CallsServed != 1 || r.client.Counters().CallsSent != 1 {
		t.Fatalf("counters: server=%+v client=%+v", r.server.Counters(), r.client.Counters())
	}
}

func TestCallNoMethod(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	var gotErr error
	r.client.Call(2, "missing", nil, func(_ []byte, err error) { gotErr = err })
	r.sim.Run()
	if !errors.Is(gotErr, ErrNoMethod) {
		t.Fatalf("err = %v", gotErr)
	}
	if r.server.Counters().NoMethod != 1 {
		t.Fatal("NoMethod counter")
	}
}

func TestCallAppError(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	r.server.Register("fail", func([]byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	var gotErr error
	r.client.Call(2, "fail", nil, func(_ []byte, err error) { gotErr = err })
	r.sim.Run()
	if !errors.Is(gotErr, ErrRemote) {
		t.Fatalf("err = %v", gotErr)
	}
	if r.server.Counters().AppErrors != 1 {
		t.Fatal("AppErrors counter")
	}
}

func TestLargeArgsChunked(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Latency: 2 * netsim.Microsecond, BitsPerSec: 10_000_000_000})
	args := make([]byte, 500_000)
	for i := range args {
		args[i] = byte(i * 7)
	}
	r.server.Register("sum", func(a []byte) ([]byte, error) {
		var s uint64
		for _, b := range a {
			s += uint64(b)
		}
		return []byte(fmt.Sprint(s)), nil
	})
	var got []byte
	var gotErr error
	r.client.Call(2, "sum", args, func(res []byte, err error) { got, gotErr = res, err })
	r.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	var want uint64
	for _, b := range args {
		want += uint64(b)
	}
	if string(got) != fmt.Sprint(want) {
		t.Fatalf("sum = %s, want %d", got, want)
	}
	if r.server.Counters().BytesArgs != uint64(len(args)) {
		t.Fatalf("BytesArgs = %d", r.server.Counters().BytesArgs)
	}
}

func TestLargeResultChunked(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Latency: 2 * netsim.Microsecond, BitsPerSec: 10_000_000_000})
	result := make([]byte, 300_000)
	for i := range result {
		result[i] = byte(i * 13)
	}
	r.server.Register("fetch", func([]byte) ([]byte, error) { return result, nil })
	var got []byte
	var gotErr error
	r.client.Call(2, "fetch", nil, func(res []byte, err error) { got, gotErr = res, err })
	r.sim.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !bytes.Equal(got, result) {
		t.Fatalf("result mismatch: %d bytes", len(got))
	}
}

func TestEmptyArgsAndResult(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	r.server.Register("noop", func(a []byte) ([]byte, error) {
		if len(a) != 0 {
			t.Errorf("args = %d bytes", len(a))
		}
		return nil, nil
	})
	done := false
	r.client.Call(2, "noop", nil, func(res []byte, err error) {
		if err != nil || len(res) != 0 {
			t.Errorf("res=%v err=%v", res, err)
		}
		done = true
	})
	r.sim.Run()
	if !done {
		t.Fatal("callback never ran")
	}
}

func TestConcurrentCalls(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Latency: 3 * netsim.Microsecond})
	r.server.Register("id", func(a []byte) ([]byte, error) { return a, nil })
	results := map[string]bool{}
	for i := 0; i < 20; i++ {
		arg := []byte(fmt.Sprintf("call-%d", i))
		r.client.Call(2, "id", arg, func(res []byte, err error) {
			if err != nil {
				t.Errorf("call failed: %v", err)
				return
			}
			results[string(res)] = true
		})
	}
	r.sim.Run()
	if len(results) != 20 {
		t.Fatalf("distinct results = %d", len(results))
	}
}

func TestCallUnderLoss(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{Latency: 3 * netsim.Microsecond, DropRate: 0.3})
	r.server.Register("echo", func(a []byte) ([]byte, error) { return a, nil })
	ok := 0
	for i := 0; i < 10; i++ {
		r.client.Call(2, "echo", []byte{byte(i)}, func(res []byte, err error) {
			if err == nil {
				ok++
			}
		})
	}
	r.sim.Run()
	if ok != 10 {
		t.Fatalf("only %d/10 calls survived 30%% loss", ok)
	}
}

func TestCallToDeadStation(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	var gotErr error
	r.client.Call(42, "echo", nil, func(_ []byte, err error) { gotErr = err })
	r.sim.Run()
	if !errors.Is(gotErr, ErrTransport) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := newRig(t, netsim.LinkConfig{})
	r.server.Register("m", func([]byte) ([]byte, error) { return []byte("v1"), nil })
	r.server.Register("m", func([]byte) ([]byte, error) { return []byte("v2"), nil })
	var got []byte
	r.client.Call(2, "m", nil, func(res []byte, err error) { got = res })
	r.sim.Run()
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func BenchmarkSmallCall(b *testing.B) {
	sim := netsim.NewSim(1)
	net := netsim.NewNetwork(sim)
	ha, _ := netsim.NewHost(net, "c")
	hb, _ := netsim.NewHost(net, "s")
	net.Connect(ha, 0, hb, 0, netsim.DefaultLink)
	epA := transport.NewEndpoint(ha, 1, transport.Config{})
	epB := transport.NewEndpoint(hb, 2, transport.Config{})
	client := NewClient(epA)
	server := NewServer(epB)
	epA.SetHandler(func(h *wire.Header, p []byte) { client.HandleFrame(h, p) })
	epB.SetHandler(func(h *wire.Header, p []byte) { server.HandleFrame(h, p) })
	server.Register("echo", func(a []byte) ([]byte, error) { return a, nil })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		client.Call(2, "echo", []byte("x"), func([]byte, error) {})
		sim.Run()
	}
}
