// Package fault is a deterministic fault-schedule engine over the
// netsim virtual clock: node crashes and restarts, link failures,
// flaps and degradation, and switch table wipes, all injected at
// scripted virtual times into a core.Cluster.
//
// The paper's §5 claims the data-centric model "masks failures" —
// replicated objects keep their identity, and the system promotes a
// replica when the home dies. This package is the substrate that
// claim is tested against: a Schedule scripts *what* breaks *when*; an
// Injector arms the script on the simulator clock, performs the
// recovery orchestration a control plane would (replica promotion
// after a detection delay, controller table repair after a wipe), and
// keeps an event log so experiments can line recovery behavior up
// against the injected faults. Everything runs on virtual time from a
// seeded simulation, so a given (schedule, seed) pair replays
// bit-identically.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/oid"
)

// Kind classifies a scripted fault.
type Kind int

// Fault kinds.
const (
	// KindCrash fail-stops a node: link down + all volatile state lost.
	KindCrash Kind = iota
	// KindRestart brings a crashed node back with an empty store.
	KindRestart
	// KindLinkDown partitions a node: link dead, state intact.
	KindLinkDown
	// KindLinkUp heals a partition.
	KindLinkUp
	// KindDegrade sets a loss rate on a node's access link.
	KindDegrade
	// KindTableWipe clears a switch's match-action tables.
	KindTableWipe
	// KindCtrlCrash fail-stops a control-plane replica (Node is the
	// replica index; -1 targets whichever replica leads at fire time).
	KindCtrlCrash
	// KindCtrlRestart revives a crashed control-plane replica (Node is
	// the replica index; -1 revives the last one this injector
	// crashed).
	KindCtrlRestart
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindLinkDown:
		return "link-down"
	case KindLinkUp:
		return "link-up"
	case KindDegrade:
		return "degrade"
	case KindTableWipe:
		return "table-wipe"
	case KindCtrlCrash:
		return "ctrl-crash"
	case KindCtrlRestart:
		return "ctrl-restart"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scripted fault.
type Event struct {
	// At is the virtual time offset (from arming) at which the fault
	// fires.
	At netsim.Duration
	// Kind selects the fault.
	Kind Kind
	// Node is the target node index (crash/restart/link faults).
	Node int
	// Switch is the target switch index for KindTableWipe; -1 wipes
	// every switch.
	Switch int
	// LossRate is the injected drop rate for KindDegrade.
	LossRate float64
}

// Schedule is an ordered fault script, built fluently:
//
//	s := fault.NewSchedule().
//		CrashNode(2*netsim.Millisecond, 1).
//		RestartNode(8*netsim.Millisecond, 1).
//		WipeTables(12*netsim.Millisecond, -1)
type Schedule struct {
	events []Event
}

// NewSchedule creates an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// CrashNode scripts a fail-stop of node at offset at.
func (s *Schedule) CrashNode(at netsim.Duration, node int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindCrash, Node: node})
	return s
}

// RestartNode scripts a crashed node's return at offset at.
func (s *Schedule) RestartNode(at netsim.Duration, node int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindRestart, Node: node})
	return s
}

// LinkDown scripts a partition of node's access link at offset at.
func (s *Schedule) LinkDown(at netsim.Duration, node int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindLinkDown, Node: node})
	return s
}

// LinkUp scripts the partition healing at offset at.
func (s *Schedule) LinkUp(at netsim.Duration, node int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindLinkUp, Node: node})
	return s
}

// FlapLink scripts a link going down at offset at and returning after
// downFor — the classic flap.
func (s *Schedule) FlapLink(at netsim.Duration, node int, downFor netsim.Duration) *Schedule {
	return s.LinkDown(at, node).LinkUp(at+downFor, node)
}

// DegradeLink scripts node's access link dropping frames at rate
// (restore with rate 0).
func (s *Schedule) DegradeLink(at netsim.Duration, node int, rate float64) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindDegrade, Node: node, LossRate: rate})
	return s
}

// WipeTables scripts clearing the match-action tables of switch sw
// (index into Cluster.Switches; -1 = every switch) at offset at.
func (s *Schedule) WipeTables(at netsim.Duration, sw int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindTableWipe, Switch: sw})
	return s
}

// CrashController scripts a fail-stop of control-plane replica
// (index into Cluster.Controllers) at offset at.
func (s *Schedule) CrashController(at netsim.Duration, replica int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindCtrlCrash, Node: replica})
	return s
}

// CrashLeader scripts a fail-stop of whichever control-plane replica
// leads when the event fires — the canonical HA availability fault.
func (s *Schedule) CrashLeader(at netsim.Duration) *Schedule {
	return s.CrashController(at, -1)
}

// RestartController scripts a crashed control-plane replica's return
// at offset at (-1 revives the injector's most recent control-plane
// crash).
func (s *Schedule) RestartController(at netsim.Duration, replica int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: KindCtrlRestart, Node: replica})
	return s
}

// Events returns the script sorted by time (stable, so same-time
// events keep insertion order).
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of scripted events.
func (s *Schedule) Len() int { return len(s.events) }

// Horizon returns the offset of the last scripted event.
func (s *Schedule) Horizon() netsim.Duration {
	var h netsim.Duration
	for _, e := range s.events {
		if e.At > h {
			h = e.At
		}
	}
	return h
}

// Config tunes the injector's recovery orchestration.
type Config struct {
	// PromotionDelay models failure detection plus promotion decision
	// time: how long after a crash surviving replicas of the dead
	// home's objects are promoted (default 500µs). Negative disables
	// promotion entirely (objects stay lost until the node restarts).
	PromotionDelay netsim.Duration
	// RepairDelay models the controller noticing a table wipe and
	// replaying its rules (default 200µs). Only meaningful when the
	// cluster runs a controller; under pure E2E the fabric re-learns
	// on its own. Negative disables repair.
	RepairDelay netsim.Duration
}

func (c *Config) fill() {
	if c.PromotionDelay == 0 {
		c.PromotionDelay = 500 * netsim.Microsecond
	}
	if c.RepairDelay == 0 {
		c.RepairDelay = 200 * netsim.Microsecond
	}
}

// Record is one log line: an injected fault or a recovery action.
type Record struct {
	At     netsim.Time
	Kind   string
	Detail string
}

// String formats the record.
func (r Record) String() string {
	return fmt.Sprintf("%12v  %-10s %s", r.At, r.Kind, r.Detail)
}

// Injector arms a Schedule against a cluster and orchestrates
// recovery.
type Injector struct {
	cluster *core.Cluster
	cfg     Config

	log        []Record
	promotions int
	lost       []oid.ID
	// lastCtrlCrashed remembers the most recent KindCtrlCrash target
	// so a RestartController(-1) pairs with a CrashLeader whose actual
	// victim was only decided at fire time.
	lastCtrlCrashed int
}

// NewInjector creates an injector for c. Arm schedules the script.
// Fault injection is sim-only: it crashes simulated hosts, forces
// link state, and wipes simulated switch tables — none of which exist
// under the realnet backend, so a realnet cluster is refused loudly
// here rather than nil-panicking at Arm time.
func NewInjector(c *core.Cluster, cfg Config) *Injector {
	if c.Sim == nil || c.Net == nil {
		panic("fault: injection is sim-only (crashes, link state, and table wipes act on the simulated network); use a BackendSim cluster")
	}
	cfg.fill()
	return &Injector{cluster: c, cfg: cfg}
}

// Arm schedules every event of sched on the cluster's virtual clock,
// relative to the current virtual time. It may be called once per
// schedule; arming multiple schedules composes.
func (inj *Injector) Arm(sched *Schedule) {
	for _, ev := range sched.Events() {
		ev := ev
		inj.cluster.Sim.Schedule(ev.At, func() { inj.fire(ev) })
	}
}

// fire applies one event and schedules its recovery actions.
func (inj *Injector) fire(ev Event) {
	c := inj.cluster
	switch ev.Kind {
	case KindCrash:
		homed := c.CrashNode(ev.Node)
		inj.record("crash", fmt.Sprintf("node%d down, %d home objects at risk", ev.Node, len(homed)))
		// The control plane's liveness detection sees the port die and
		// drops ownership records, so locates fail fast instead of
		// routing into a black hole. Under a replicated control plane
		// the forget commits through the current leader.
		c.ForgetStation(c.Nodes[ev.Node].Station)
		if inj.cfg.PromotionDelay < 0 {
			inj.lost = append(inj.lost, homed...)
			return
		}
		c.Sim.Schedule(inj.cfg.PromotionDelay, func() { inj.promote(homed) })
	case KindRestart:
		c.RestartNode(ev.Node)
		inj.record("restart", fmt.Sprintf("node%d up (empty store)", ev.Node))
	case KindLinkDown:
		c.Net.SetLinkDown(c.Nodes[ev.Node].Host, 0, true)
		inj.record("link-down", fmt.Sprintf("node%d partitioned", ev.Node))
	case KindLinkUp:
		c.Net.SetLinkDown(c.Nodes[ev.Node].Host, 0, false)
		inj.record("link-up", fmt.Sprintf("node%d rejoined", ev.Node))
	case KindDegrade:
		c.Net.SetLinkLoss(c.Nodes[ev.Node].Host, 0, ev.LossRate)
		inj.record("degrade", fmt.Sprintf("node%d loss=%.0f%%", ev.Node, ev.LossRate*100))
	case KindTableWipe:
		wiped := 0
		for i, sw := range c.Switches {
			if ev.Switch >= 0 && i != ev.Switch {
				continue
			}
			sw.WipeTables()
			wiped++
		}
		inj.record("table-wipe", fmt.Sprintf("%d switch table(s) cleared", wiped))
		if c.Controller != nil && inj.cfg.RepairDelay >= 0 {
			c.Sim.Schedule(inj.cfg.RepairDelay, func() {
				// The leading replica replays station routes first (so
				// replies unicast again), then object rules. With no
				// leader mid-election, the next leader's ReinstallAll
				// covers the wipe anyway.
				lead := c.LeaderController()
				if lead == nil {
					inj.record("repair-skip", "no control-plane leader")
					return
				}
				lead.ProgramStationTables()
				n := lead.ReinstallAll()
				inj.record("repair", fmt.Sprintf("controller reinstalled %d object(s)", n))
			})
		}
	case KindCtrlCrash:
		idx := ev.Node
		if idx < 0 {
			idx = c.ControlLeaderIndex()
			if idx < 0 {
				inj.record("ctrl-crash-skip", "no control-plane leader to kill")
				return
			}
		}
		c.CrashController(idx)
		inj.lastCtrlCrashed = idx
		inj.record("ctrl-crash", fmt.Sprintf("controller replica %d down", idx))
	case KindCtrlRestart:
		idx := ev.Node
		if idx < 0 {
			idx = inj.lastCtrlCrashed
		}
		c.RestartController(idx)
		inj.record("ctrl-restart", fmt.Sprintf("controller replica %d up", idx))
	}
}

// promote walks the dead home's objects and promotes the
// lowest-station surviving replica of each; objects with no surviving
// copy are recorded as lost.
func (inj *Injector) promote(homed []oid.ID) {
	c := inj.cluster
	for _, obj := range homed {
		var target *core.Node
		for _, n := range c.Nodes {
			if n.Down() || !n.Store.Contains(obj) {
				continue
			}
			if target == nil || n.Station < target.Station {
				target = n
			}
		}
		if target == nil {
			inj.lost = append(inj.lost, obj)
			inj.record("lost", obj.Short())
			continue
		}
		if err := c.PromoteReplica(obj, target); err != nil {
			inj.record("promote-fail", fmt.Sprintf("%s: %v", obj.Short(), err))
			continue
		}
		inj.promotions++
		inj.record("promote", fmt.Sprintf("%s → %v", obj.Short(), target.Station))
	}
}

func (inj *Injector) record(kind, detail string) {
	inj.log = append(inj.log, Record{At: inj.cluster.Sim.Now(), Kind: kind, Detail: detail})
}

// Log returns the fault/recovery event log in time order.
func (inj *Injector) Log() []Record {
	out := make([]Record, len(inj.log))
	copy(out, inj.log)
	return out
}

// Promotions reports how many replicas were promoted to home.
func (inj *Injector) Promotions() int { return inj.promotions }

// Lost returns objects whose every copy died with a crashed node.
func (inj *Injector) Lost() []oid.ID {
	out := make([]oid.ID, len(inj.lost))
	copy(out, inj.lost)
	return out
}
