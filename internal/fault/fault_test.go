package fault

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/netsim"
	"repro/internal/object"
)

// newCluster builds a small test cluster with fast discovery.
func newCluster(t *testing.T, scheme core.Scheme, seed int64) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(core.Config{
		Seed:             seed,
		Scheme:           scheme,
		DiscoveryTimeout: 300 * netsim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScheduleBuilder(t *testing.T) {
	s := NewSchedule().
		WipeTables(3*netsim.Millisecond, -1).
		CrashNode(netsim.Millisecond, 1).
		FlapLink(2*netsim.Millisecond, 0, 500*netsim.Microsecond)
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	evs := s.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted: %v then %v", evs[i-1].At, evs[i].At)
		}
	}
	if evs[0].Kind != KindCrash || evs[1].Kind != KindLinkDown {
		t.Fatalf("order = %v, %v", evs[0].Kind, evs[1].Kind)
	}
	if s.Horizon() != 3*netsim.Millisecond {
		t.Fatalf("horizon = %v", s.Horizon())
	}
}

func TestCrashPromotesReplicaAndReadsRecover(t *testing.T) {
	// A replicated object survives its home's fail-stop: the injector
	// promotes the surviving copy and a reader with a stale cached
	// location recovers through re-discovery.
	c := newCluster(t, core.SchemeE2E, 7)
	home, replica, reader := c.Node(1), c.Node(2), c.Node(0)

	o, err := home.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("fault-tolerant")
	okRep := false
	c.ReplicateObject(o.ID(), replica, func(err error) { okRep = err == nil })
	c.Run()
	if !okRep {
		t.Fatal("replication failed")
	}

	// Warm the reader's destination cache so the crash leaves it stale.
	warm := false
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 5, func(_ []byte, err error) {
		warm = err == nil
	})
	c.Run()
	if !warm {
		t.Fatal("warm read failed")
	}

	inj := NewInjector(c, Config{})
	inj.Arm(NewSchedule().CrashNode(netsim.Millisecond, 1))

	var got []byte
	var gotErr error
	c.Sim.Schedule(2*netsim.Millisecond, func() {
		reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 14, func(b []byte, err error) {
			got, gotErr = append([]byte(nil), b...), err
		})
	})
	c.Run()

	if gotErr != nil {
		t.Fatalf("read after crash: %v", gotErr)
	}
	if string(got) != "fault-tolerant" {
		t.Fatalf("read = %q", got)
	}
	if inj.Promotions() != 1 {
		t.Fatalf("promotions = %d", inj.Promotions())
	}
	if len(inj.Lost()) != 0 {
		t.Fatalf("lost = %v", inj.Lost())
	}
	kinds := logKinds(inj)
	if !strings.Contains(kinds, "crash") || !strings.Contains(kinds, "promote") {
		t.Fatalf("log kinds = %s", kinds)
	}
}

func TestCrashWithoutReplicaLosesObject(t *testing.T) {
	c := newCluster(t, core.SchemeE2E, 7)
	o, err := c.Node(1).CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()

	inj := NewInjector(c, Config{})
	inj.Arm(NewSchedule().CrashNode(netsim.Millisecond, 1))
	c.Run()

	if inj.Promotions() != 0 {
		t.Fatalf("promotions = %d", inj.Promotions())
	}
	lost := inj.Lost()
	if len(lost) != 1 || lost[0] != o.ID() {
		t.Fatalf("lost = %v, want [%v]", lost, o.ID())
	}
}

func TestLinkFlapMaskedByRetransmission(t *testing.T) {
	// A flap shorter than the transport retry budget is invisible to
	// the application: retransmits with backoff bridge the outage.
	c := newCluster(t, core.SchemeE2E, 7)
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("bridged")
	// Warm the reader's destination cache: the read under test then
	// goes straight to the (flapping) owner and must be bridged by
	// retransmission, not by re-discovery.
	warm := false
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 7, func(_ []byte, err error) {
		warm = err == nil
	})
	c.Run()
	if !warm {
		t.Fatal("warm read failed")
	}

	inj := NewInjector(c, Config{})
	armedAt := c.Sim.Now()
	inj.Arm(NewSchedule().FlapLink(netsim.Millisecond, 1, 2*netsim.Millisecond))

	var gotErr error
	var doneAt netsim.Time
	got := false
	c.Sim.Schedule(1500*netsim.Microsecond, func() {
		reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 7, func(_ []byte, err error) {
			gotErr, got = err, true
			doneAt = c.Sim.Now()
		})
	})
	c.Run()

	if !got {
		t.Fatal("read during flap hung")
	}
	if gotErr != nil {
		t.Fatalf("read during flap: %v", gotErr)
	}
	if upAt := armedAt.Add(3 * netsim.Millisecond); doneAt < upAt {
		t.Fatalf("read completed at %v, before the link returned at %v", doneAt, upAt)
	}
}

func TestTableWipeRepairedByController(t *testing.T) {
	c := newCluster(t, core.SchemeController, 7)
	owner, reader := c.Node(1), c.Node(0)
	o, err := owner.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o.AllocString("reinstalled")
	warm := false
	reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 11, func(_ []byte, err error) {
		warm = err == nil
	})
	c.Run()
	if !warm {
		t.Fatal("warm read failed")
	}

	inj := NewInjector(c, Config{})
	inj.Arm(NewSchedule().WipeTables(netsim.Millisecond, -1))

	var got []byte
	var gotErr error
	c.Sim.Schedule(2*netsim.Millisecond, func() {
		reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 11, func(b []byte, err error) {
			got, gotErr = append([]byte(nil), b...), err
		})
	})
	c.Run()

	if gotErr != nil {
		t.Fatalf("read after wipe: %v", gotErr)
	}
	if string(got) != "reinstalled" {
		t.Fatalf("read = %q", got)
	}
	kinds := logKinds(inj)
	if !strings.Contains(kinds, "table-wipe") || !strings.Contains(kinds, "repair") {
		t.Fatalf("log kinds = %s", kinds)
	}
}

func TestRestartedNodeServesFreshTraffic(t *testing.T) {
	c := newCluster(t, core.SchemeE2E, 7)
	victim := c.Node(1)
	o, err := victim.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()

	inj := NewInjector(c, Config{})
	inj.Arm(NewSchedule().
		CrashNode(netsim.Millisecond, 1).
		RestartNode(3*netsim.Millisecond, 1))
	c.Run()

	if victim.Down() {
		t.Fatal("node still down after restart")
	}
	if victim.Store.Contains(o.ID()) {
		t.Fatal("restart resurrected volatile state")
	}
	// The restarted node can host new objects and serve them.
	o2, err := victim.CreateObject(4096)
	if err != nil {
		t.Fatal(err)
	}
	off, _ := o2.AllocString("born-again")
	var got []byte
	var gotErr error
	c.Node(0).ReadRef(object.Global{Obj: o2.ID(), Off: off + 8}, 10, func(b []byte, err error) {
		got, gotErr = append([]byte(nil), b...), err
	})
	c.Run()
	if gotErr != nil || string(got) != "born-again" {
		t.Fatalf("read from restarted node = %q, %v", got, gotErr)
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	run := func() (string, netsim.Time) {
		c := newCluster(t, core.SchemeE2E, 21)
		home, replica, reader := c.Node(1), c.Node(2), c.Node(0)
		o, err := home.CreateObject(8192)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := o.AllocString("replay")
		c.ReplicateObject(o.ID(), replica, func(error) {})
		c.Run()

		inj := NewInjector(c, Config{})
		inj.Arm(NewSchedule().
			CrashNode(netsim.Millisecond, 1).
			FlapLink(4*netsim.Millisecond, 2, netsim.Millisecond).
			RestartNode(8*netsim.Millisecond, 1))
		c.Sim.Schedule(2*netsim.Millisecond, func() {
			reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 6, func([]byte, error) {})
		})
		c.Run()

		var b strings.Builder
		for _, r := range inj.Log() {
			fmt.Fprintln(&b, r.String())
		}
		return b.String(), c.Sim.Now()
	}
	log1, end1 := run()
	log2, end2 := run()
	if log1 != log2 {
		t.Fatalf("logs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", log1, log2)
	}
	if end1 != end2 {
		t.Fatalf("end times differ: %v vs %v", end1, end2)
	}
}

func logKinds(inj *Injector) string {
	var kinds []string
	for _, r := range inj.Log() {
		kinds = append(kinds, r.Kind)
	}
	return strings.Join(kinds, ",")
}

func TestRediscoveryAfterCrashAllSchemes(t *testing.T) {
	// Every discovery scheme must re-resolve an object whose home
	// crashed and whose surviving replica was promoted: E2E by
	// re-broadcasting after invalidation, Controller by locating
	// against the repaired ownership map, Hybrid by either path.
	for _, scheme := range []core.Scheme{core.SchemeE2E, core.SchemeController, core.SchemeHybrid} {
		t.Run(scheme.String(), func(t *testing.T) {
			c := newCluster(t, scheme, 13)
			home, replica, reader := c.Node(1), c.Node(2), c.Node(0)
			o, err := home.CreateObject(4096)
			if err != nil {
				t.Fatal(err)
			}
			off, _ := o.AllocString("re-resolved")
			okRep := false
			c.ReplicateObject(o.ID(), replica, func(err error) { okRep = err == nil })
			c.Run()
			if !okRep {
				t.Fatal("replication failed")
			}
			// Warm the reader so its resolver state points at the
			// soon-to-be-dead home.
			warm := false
			reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 11, func(_ []byte, err error) {
				warm = err == nil
			})
			c.Run()
			if !warm {
				t.Fatal("warm read failed")
			}

			inj := NewInjector(c, Config{})
			inj.Arm(NewSchedule().CrashNode(netsim.Millisecond, 1))

			var got []byte
			var gotErr error
			c.Sim.Schedule(2*netsim.Millisecond, func() {
				reader.ReadRef(object.Global{Obj: o.ID(), Off: off + 8}, 11, func(b []byte, err error) {
					got, gotErr = append([]byte(nil), b...), err
				})
			})
			c.Run()

			if gotErr != nil {
				t.Fatalf("%v: read after crash: %v", scheme, gotErr)
			}
			if string(got) != "re-resolved" {
				t.Fatalf("%v: read = %q", scheme, got)
			}
			if inj.Promotions() != 1 {
				t.Fatalf("%v: promotions = %d", scheme, inj.Promotions())
			}
			// Under E2E the reader held a stale destination-cache entry
			// that must have been actively evicted. Controller and
			// Hybrid route on the object itself: once the new home
			// re-announces, frames just flow to it, no client state to
			// invalidate.
			if scheme == core.SchemeE2E {
				rc, ok := reader.Resolver.(interface{ Counters() discovery.Counters })
				if !ok {
					t.Fatalf("%v: resolver exposes no counters", scheme)
				}
				if rc.Counters().Invalidations == 0 {
					t.Fatalf("%v: no invalidations recorded", scheme)
				}
			}
		})
	}
}
