// Package gasperr defines the sentinel error taxonomy shared by every
// layer of the stack. Subsystems (transport, discovery, coherence,
// p4sim, core) keep their own descriptive errors but wrap one of these
// sentinels, so callers can classify a failure with errors.Is without
// knowing which layer produced it:
//
//	if errors.Is(err, gasperr.ErrUnreachable) { retryElsewhere() }
//
// The taxonomy is deliberately small — four classes cover every
// recoverable failure the fault engine injects:
//
//   - ErrNotFound: the object (or route, or directory entry) does not
//     exist anywhere the resolver can see. Retrying without a topology
//     change will not help.
//   - ErrTimeout: a bounded wait elapsed. The operation may have taken
//     effect; the caller must treat it as ambiguous.
//   - ErrUnreachable: delivery itself failed — retransmission budget
//     exhausted, link down, or peer crashed. Retrying after
//     re-discovery may succeed.
//   - ErrTableFull: an in-network match-action table has no free
//     capacity. Falling back to an end-to-end path is the remedy.
package gasperr

import "errors"

var (
	// ErrNotFound reports that the referenced object is unknown.
	ErrNotFound = errors.New("object not found")
	// ErrTimeout reports that a bounded wait elapsed with no answer.
	ErrTimeout = errors.New("timed out")
	// ErrUnreachable reports that delivery to the peer failed outright.
	ErrUnreachable = errors.New("peer unreachable")
	// ErrTableFull reports that a switch match-action table is at capacity.
	ErrTableFull = errors.New("table full")
)

// Class returns the sentinel that err wraps, or nil if err belongs to
// none of the four classes. Useful for bucketing failures in metrics.
func Class(err error) error {
	switch {
	case errors.Is(err, ErrNotFound):
		return ErrNotFound
	case errors.Is(err, ErrTimeout):
		return ErrTimeout
	case errors.Is(err, ErrUnreachable):
		return ErrUnreachable
	case errors.Is(err, ErrTableFull):
		return ErrTableFull
	}
	return nil
}

// Retryable reports whether the failure class is worth retrying after
// backoff and/or re-discovery. ErrNotFound is terminal: the object is
// gone, not late.
func Retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnreachable)
}
