// Package gasperr defines the sentinel error taxonomy shared by every
// layer of the stack. Subsystems (transport, discovery, coherence,
// p4sim, core) keep their own descriptive errors but wrap one of these
// sentinels, so callers can classify a failure with errors.Is without
// knowing which layer produced it:
//
//	if errors.Is(err, gasperr.ErrUnreachable) { retryElsewhere() }
//
// The taxonomy is deliberately small — five classes cover every
// recoverable failure the fault engine injects:
//
//   - ErrNotFound: the object (or route, or directory entry) does not
//     exist anywhere the resolver can see. Retrying without a topology
//     change will not help.
//   - ErrTimeout: a bounded wait elapsed. The operation may have taken
//     effect; the caller must treat it as ambiguous.
//   - ErrUnreachable: delivery itself failed — retransmission budget
//     exhausted, link down, or peer crashed. Retrying after
//     re-discovery may succeed.
//   - ErrTableFull: an in-network match-action table has no free
//     capacity. Falling back to an end-to-end path is the remedy.
//   - ErrNotLeader: a replicated control plane rejected a proposal
//     because this replica is not the leader. Redirecting to the
//     leader (or retrying after an election settles) succeeds.
package gasperr

import "errors"

var (
	// ErrNotFound reports that the referenced object is unknown.
	ErrNotFound = errors.New("object not found")
	// ErrTimeout reports that a bounded wait elapsed with no answer.
	ErrTimeout = errors.New("timed out")
	// ErrUnreachable reports that delivery to the peer failed outright.
	ErrUnreachable = errors.New("peer unreachable")
	// ErrTableFull reports that a switch match-action table is at capacity.
	ErrTableFull = errors.New("table full")
	// ErrNotLeader reports that a replicated control-plane request
	// reached a follower; the caller should redirect to the leader.
	ErrNotLeader = errors.New("not the leader")
)

// Class returns the sentinel that err wraps, or nil if err belongs to
// none of the five classes. Useful for bucketing failures in metrics.
func Class(err error) error {
	switch {
	case errors.Is(err, ErrNotFound):
		return ErrNotFound
	case errors.Is(err, ErrTimeout):
		return ErrTimeout
	case errors.Is(err, ErrUnreachable):
		return ErrUnreachable
	case errors.Is(err, ErrTableFull):
		return ErrTableFull
	case errors.Is(err, ErrNotLeader):
		return ErrNotLeader
	}
	return nil
}

// Retryable reports whether the failure class is worth retrying after
// backoff and/or re-discovery. ErrNotFound is terminal: the object is
// gone, not late. ErrNotLeader is retryable by construction — the
// client redirects to the leader the reply names (or waits out an
// election) and proposes again.
func Retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrNotLeader)
}
