package gasperr

import (
	"errors"
	"fmt"
	"testing"
)

func TestClass(t *testing.T) {
	cases := []struct {
		err  error
		want error
	}{
		{fmt.Errorf("transport: retransmission limit reached: %w", ErrUnreachable), ErrUnreachable},
		{fmt.Errorf("discovery: %w", ErrNotFound), ErrNotFound},
		{fmt.Errorf("rpc: %w", ErrTimeout), ErrTimeout},
		{fmt.Errorf("p4sim: %w", ErrTableFull), ErrTableFull},
		{errors.New("unrelated"), nil},
		{nil, nil},
	}
	for _, c := range cases {
		if got := Class(c.err); got != c.want {
			t.Errorf("Class(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(fmt.Errorf("x: %w", ErrTimeout)) {
		t.Error("timeout should be retryable")
	}
	if !Retryable(fmt.Errorf("x: %w", ErrUnreachable)) {
		t.Error("unreachable should be retryable")
	}
	if Retryable(fmt.Errorf("x: %w", ErrNotFound)) {
		t.Error("not-found should not be retryable")
	}
	if Retryable(fmt.Errorf("x: %w", ErrTableFull)) {
		t.Error("table-full should not be retryable")
	}
}
