// Package future provides the promise half of the repo's async APIs:
// a Future[T] resolved by whichever backend the stack runs on. It
// sits below core so that any layer with a callback API (coherence,
// rpc, core) can return futures without an import cycle.
//
// Futures are safe for concurrent use: under the simulator everything
// is single-threaded and the locking is uncontended overhead, but
// under the realnet backend completions arrive from reader-goroutine
// upcalls while a harness goroutine blocks in Await.
package future

import (
	"context"
	"errors"
	"sync"
)

// ErrNotReady reports that a future's Result was read before the
// backend resolved it.
var ErrNotReady = errors.New("future: not resolved yet")

// Future is a promise-style handle on an asynchronous result: the
// value-returning alternative to the cb(...) continuation forms.
//
// Under the simulator a Future never blocks — it resolves during
// Cluster.Run (or any Sim.Run variant), and Result is read
// afterwards:
//
//	f := node.Coherence.AcquireShared(obj)
//	cluster.Run()
//	o, err := f.Result()
//
// Under a wall-clock backend there is no "run until quiet" to lean
// on; Await blocks the calling goroutine until resolution, a context
// deadline, or cancellation. Then chains work onto resolution without
// waiting for it, mirroring the continuation style when composition
// is needed.
type Future[T any] struct {
	mu    sync.Mutex
	done  bool
	val   T
	err   error
	subs  []func(T, error)
	ready chan struct{} // lazily made by the first Await
}

// New creates an unresolved future and the completion function that
// resolves it. The completion function is idempotent — only the first
// call wins, matching the "exactly once" contract of the callback
// APIs it wraps.
func New[T any]() (*Future[T], func(T, error)) {
	f := &Future[T]{}
	return f, f.complete
}

// Resolved returns an already-completed future (for fast paths that
// fail or hit a local cache before any asynchrony starts).
func Resolved[T any](v T, err error) *Future[T] {
	return &Future[T]{done: true, val: v, err: err}
}

func (f *Future[T]) complete(v T, err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	f.val, f.err = v, err
	subs := f.subs
	f.subs = nil
	if f.ready != nil {
		close(f.ready)
	}
	// Callbacks run outside the lock so a subscriber may chain another
	// Then (or Await) on this same future without self-deadlocking.
	f.mu.Unlock()
	for _, fn := range subs {
		fn(v, err)
	}
}

// Done reports whether the future has resolved.
func (f *Future[T]) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Result returns the resolved value or error. Reading before
// resolution returns ErrNotReady (with a zero value): run the
// simulation (or Await) first.
func (f *Future[T]) Result() (T, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		var zero T
		return zero, ErrNotReady
	}
	return f.val, f.err
}

// MustResult returns the value, panicking on error or if unresolved —
// for examples and tests where failure is fatal anyway.
func (f *Future[T]) MustResult() T {
	v, err := f.Result()
	if err != nil {
		panic(err)
	}
	return v
}

// Err returns the resolution error: ErrNotReady before resolution,
// then whatever the operation produced (nil on success).
func (f *Future[T]) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		return ErrNotReady
	}
	return f.err
}

// Then runs fn when the future resolves (immediately if it already
// has). Multiple callbacks run in registration order.
func (f *Future[T]) Then(fn func(T, error)) *Future[T] {
	f.mu.Lock()
	if f.done {
		v, err := f.val, f.err
		f.mu.Unlock()
		fn(v, err)
		return f
	}
	f.subs = append(f.subs, fn)
	f.mu.Unlock()
	return f
}

// Await blocks until the future resolves or ctx ends, returning the
// resolution (or ctx.Err with a zero value). This is the wall-clock
// waiting primitive: completions arrive from another goroutine's
// upcall. Under the simulator nothing advances the clock while a bare
// Await blocks — use core.Await, which pumps the event loop.
func (f *Future[T]) Await(ctx context.Context) (T, error) {
	f.mu.Lock()
	if f.done {
		v, err := f.val, f.err
		f.mu.Unlock()
		return v, err
	}
	if f.ready == nil {
		f.ready = make(chan struct{})
	}
	ch := f.ready
	f.mu.Unlock()
	select {
	case <-ch:
		return f.Result()
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Wait is Await without cancellation — the legacy blocking form, kept
// as a shim. Prefer Await with a context carrying a deadline.
func (f *Future[T]) Wait() (T, error) {
	return f.Await(context.Background())
}
