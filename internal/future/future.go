// Package future provides the promise half of the repo's async APIs:
// a single-threaded Future[T] resolved by the discrete-event
// simulation. It sits below core so that any layer with a callback
// API (coherence, rpc, core) can return futures without an import
// cycle.
package future

import "errors"

// ErrNotReady reports that a future's Result was read before the
// simulation resolved it.
var ErrNotReady = errors.New("future: not resolved yet")

// Future is a promise-style handle on an asynchronous result: the
// value-returning alternative to the cb(...) continuation forms. The
// simulation is single-threaded on a virtual clock, so a Future never
// blocks — it resolves during Cluster.Run (or any Sim.Run variant),
// and Result is read afterwards:
//
//	f := node.Coherence.AcquireShared(obj)
//	cluster.Run()
//	o, err := f.Result()
//
// Then chains work onto resolution without waiting for it, mirroring
// the continuation style when composition is needed.
type Future[T any] struct {
	done bool
	val  T
	err  error
	subs []func(T, error)
}

// New creates an unresolved future and the completion function that
// resolves it. The completion function is idempotent — only the first
// call wins, matching the "exactly once" contract of the callback
// APIs it wraps.
func New[T any]() (*Future[T], func(T, error)) {
	f := &Future[T]{}
	return f, f.complete
}

// Resolved returns an already-completed future (for fast paths that
// fail or hit a local cache before any asynchrony starts).
func Resolved[T any](v T, err error) *Future[T] {
	return &Future[T]{done: true, val: v, err: err}
}

func (f *Future[T]) complete(v T, err error) {
	if f.done {
		return
	}
	f.done = true
	f.val, f.err = v, err
	subs := f.subs
	f.subs = nil
	for _, fn := range subs {
		fn(v, err)
	}
}

// Done reports whether the future has resolved.
func (f *Future[T]) Done() bool { return f.done }

// Result returns the resolved value or error. Reading before
// resolution returns ErrNotReady (with a zero value): run the
// simulation first.
func (f *Future[T]) Result() (T, error) {
	if !f.done {
		var zero T
		return zero, ErrNotReady
	}
	return f.val, f.err
}

// MustResult returns the value, panicking on error or if unresolved —
// for examples and tests where failure is fatal anyway.
func (f *Future[T]) MustResult() T {
	v, err := f.Result()
	if err != nil {
		panic(err)
	}
	return v
}

// Err returns the resolution error: ErrNotReady before resolution,
// then whatever the operation produced (nil on success).
func (f *Future[T]) Err() error {
	if !f.done {
		return ErrNotReady
	}
	return f.err
}

// Then runs fn when the future resolves (immediately if it already
// has). Multiple callbacks run in registration order.
func (f *Future[T]) Then(fn func(T, error)) *Future[T] {
	if f.done {
		fn(f.val, f.err)
		return f
	}
	f.subs = append(f.subs, fn)
	return f
}
