package p4sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Register arrays model the stateful ALUs of a programmable switch:
// the paper proposes "offloading some synchronization and arbitration
// concerns to the programmable network (which now functions somewhat
// as a memory bus)" (§5), in the spirit of NetChain [18] and the
// optimistic-concurrency work [16]. A table entry with ActRegisters
// executes an atomic register operation in the pipeline and the
// switch itself answers — no host on the critical path.

// ActRegisters processes the frame against the switch register array.
const ActRegisters ActionType = 100

// RegOp is an atomic register operation.
type RegOp uint8

// Register operations.
const (
	// RegRead returns the register value.
	RegRead RegOp = iota + 1
	// RegFetchAdd adds A and returns the prior value (sequencers,
	// tickets).
	RegFetchAdd
	// RegCompareSwap sets the register to B if it equals A; returns
	// the prior value (locks, arbitration).
	RegCompareSwap
)

// String names the operation.
func (o RegOp) String() string {
	switch o {
	case RegRead:
		return "read"
	case RegFetchAdd:
		return "fetch-add"
	case RegCompareSwap:
		return "compare-swap"
	}
	return fmt.Sprintf("regop(%d)", uint8(o))
}

// Register request/reply payload layout (inside wire.MsgCtrl frames):
//
//	request:  op(1) | index(4) | operandA(8) | operandB(8)
//	reply:    status(1) | value(8)
const (
	regReqSize  = 21
	regRespSize = 9
)

// Register statuses.
const (
	RegOK        = 0
	RegBadIndex  = 1
	RegBadOp     = 2
	RegCASFailed = 3
)

// EncodeRegisterReq builds a register request payload.
func EncodeRegisterReq(op RegOp, index uint32, a, b uint64) []byte {
	buf := make([]byte, regReqSize)
	buf[0] = byte(op)
	binary.BigEndian.PutUint32(buf[1:5], index)
	binary.BigEndian.PutUint64(buf[5:13], a)
	binary.BigEndian.PutUint64(buf[13:21], b)
	return buf
}

// DecodeRegisterResp parses a register reply payload.
func DecodeRegisterResp(p []byte) (status byte, value uint64, err error) {
	if len(p) < regRespSize {
		return 0, 0, fmt.Errorf("p4sim: short register reply (%d bytes)", len(p))
	}
	return p[0], binary.BigEndian.Uint64(p[1:9]), nil
}

// EnableRegisters provisions n registers (zero-initialized) on the
// switch. The switch must have been configured with a Station so its
// replies carry a source.
func (sw *Switch) EnableRegisters(n int) error {
	if sw.cfg.Station == 0 {
		return fmt.Errorf("p4sim: switch %s needs a Station to host registers", sw.name)
	}
	sw.registers = make([]uint64, n)
	return nil
}

// Registers returns a copy of the register array (for tests).
func (sw *Switch) Registers() []uint64 {
	return append([]uint64(nil), sw.registers...)
}

// regKey identifies a client request for duplicate suppression.
type regKey struct {
	src wire.StationID
	seq uint64
}

// handleRegisters executes the operation and answers from the switch.
// Transport-level retransmissions are answered from a reply cache so
// each operation executes at most once (the switch analogue of the
// sequence-number registers NetChain uses).
func (sw *Switch) handleRegisters(ingress int, h *wire.Header, fr netsim.Frame) {
	key := regKey{src: h.Src, seq: h.Seq}
	if cached, dup := sw.regCache[key]; dup {
		sw.counters.FramesOut++
		sw.net.Sim().Schedule(sw.cfg.PipelineDelay, func() {
			sw.net.Send(sw, ingress, cached)
		})
		return
	}
	sw.counters.RegisterOps++
	payload := wire.Payload(fr)
	status := byte(RegOK)
	var value uint64
	if sw.registers == nil || len(payload) < regReqSize {
		status = RegBadOp
	} else {
		op := RegOp(payload[0])
		idx := binary.BigEndian.Uint32(payload[1:5])
		a := binary.BigEndian.Uint64(payload[5:13])
		b := binary.BigEndian.Uint64(payload[13:21])
		if int(idx) >= len(sw.registers) {
			status = RegBadIndex
		} else {
			switch op {
			case RegRead:
				value = sw.registers[idx]
			case RegFetchAdd:
				value = sw.registers[idx]
				sw.registers[idx] += a
			case RegCompareSwap:
				value = sw.registers[idx]
				if value == a {
					sw.registers[idx] = b
				} else {
					status = RegCASFailed
				}
			default:
				status = RegBadOp
			}
		}
	}

	resp := make([]byte, regRespSize)
	resp[0] = status
	binary.BigEndian.PutUint64(resp[1:9], value)
	sw.replySeq++
	out := wire.Header{
		Type:   wire.MsgCtrl,
		Flags:  wire.FlagResponse,
		Src:    sw.cfg.Station,
		Dst:    h.Src,
		Object: h.Object,
		Seq:    sw.replySeq,
		Ack:    h.Seq,
	}
	frame, err := wire.Encode(&out, resp)
	if err != nil {
		return
	}
	// Remember the reply for retransmitted requests (bounded ring).
	if sw.regCache == nil {
		sw.regCache = make(map[regKey]netsim.Frame, sw.cfg.RegCacheCapacity)
		sw.regRing = make([]regKey, sw.cfg.RegCacheCapacity)
	}
	old := sw.regRing[sw.regNext]
	if old != (regKey{}) {
		delete(sw.regCache, old)
	}
	sw.regRing[sw.regNext] = key
	sw.regNext = (sw.regNext + 1) % sw.cfg.RegCacheCapacity
	sw.regCache[key] = frame

	// Answer out the ingress port: the requester's path is symmetric.
	sw.counters.FramesOut++
	sw.net.Sim().Schedule(sw.cfg.PipelineDelay, func() {
		sw.net.Send(sw, ingress, frame)
	})
}
