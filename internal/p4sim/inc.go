package p4sim

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// In-network computation (INC): the paper's §5 argues that once the
// fabric routes on object identity, switches can run application work
// — caching, multicast, aggregation — inside the pipeline, in the
// spirit of NetRPC and NetChain. The computations themselves live in
// internal/inc (above the backend seam); this file is the pipeline
// attachment point: an IncProgram sees every ingress frame before the
// forwarding decision and may consume it, plus the helpers a program
// needs to originate frames from the switch.

// INC action types, dispatched by the program's own compiled
// match-action classifier (see internal/inc).
const (
	// ActIncCache marks frames the in-switch object cache inspects
	// (memory reads it may serve, responses it may learn from).
	ActIncCache ActionType = 101
	// ActIncGroup marks multicast invalidations the switch replicates
	// along the spanning tree from its group table.
	ActIncGroup ActionType = 102
	// ActIncAgg marks invalidate-acks the switch may coalesce into an
	// aggregated ack.
	ActIncAgg ActionType = 103
)

// IncProgram is a switch-resident computation attached to the ingress
// pipeline. HandleFrame runs after source learning and before the
// forwarding decision; returning true consumes the frame (the program
// served, replicated, or absorbed it), false lets it continue through
// the normal match-action program. A program that stores frame bytes
// must copy them — the buffer is recycled when ingress returns.
type IncProgram interface {
	HandleFrame(ingress int, h *wire.Header, fr netsim.Frame) bool
}

// SetIncProgram attaches an INC program to the switch (nil detaches).
func (sw *Switch) SetIncProgram(p IncProgram) { sw.inc = p }

// IncProgram returns the attached INC program (nil if none).
func (sw *Switch) IncProgram() IncProgram { return sw.inc }

// Station returns the switch's station identity (0 = none). Programs
// that originate frames need it for the source field.
func (sw *Switch) Station() wire.StationID { return sw.cfg.Station }

// NextReplySeq returns a fresh sequence number for a frame the switch
// itself originates (shared with the register replies, so every
// switch-sourced frame is uniquely numbered).
func (sw *Switch) NextReplySeq() uint64 {
	sw.replySeq++
	return sw.replySeq
}

// EmitFrame transmits a switch-originated frame out port after the
// pipeline delay. Unconnected ports count as drops.
func (sw *Switch) EmitFrame(port int, fr netsim.Frame) {
	if !sw.net.Connected(sw, port) {
		sw.counters.Dropped++
		return
	}
	sw.counters.FramesOut++
	sw.net.Sim().Schedule(sw.cfg.PipelineDelay, func() {
		sw.net.Send(sw, port, fr)
	})
}

// FloodFrame emits fr on every connected port except skip (pass a
// negative skip to flood all ports).
func (sw *Switch) FloodFrame(skip int, fr netsim.Frame) {
	sw.counters.Flooded++
	n := sw.net.NumPorts(sw)
	for p := 0; p < n; p++ {
		if p == skip || !sw.net.Connected(sw, p) {
			continue
		}
		sw.EmitFrame(p, fr)
	}
}

// StationPort reports the egress port toward st from the station
// table (false when the station is unknown or not a plain forward).
func (sw *Switch) StationPort(st wire.StationID) (int, bool) {
	act, ok := sw.stationTable.Lookup(&wire.Header{Dst: st})
	if !ok || act.Type != ActForward {
		return 0, false
	}
	return act.Port, true
}

// ScheduleAfter runs fn after d on the switch's clock — the timer an
// aggregation program arms for its flush path.
func (sw *Switch) ScheduleAfter(d netsim.Duration, fn func()) {
	sw.net.Sim().Schedule(d, fn)
}

// IncGroupTable is implemented by INC programs that hold a multicast
// group table the control plane installs into.
type IncGroupTable interface {
	InstallGroup(id uint64, members []wire.StationID)
}

// InstallIncGroup programs a multicast group into the attached INC
// program — the controller-facing entry point, symmetric with
// InstallObjectRoute.
func (sw *Switch) InstallIncGroup(id uint64, members []wire.StationID) error {
	gt, ok := sw.inc.(IncGroupTable)
	if !ok {
		return fmt.Errorf("p4sim: switch %s has no INC group table", sw.name)
	}
	gt.InstallGroup(id, members)
	return nil
}
