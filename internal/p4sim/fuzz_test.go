package p4sim

import (
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestSwitchSurvivesRandomFrames feeds thousands of random frames —
// garbage, truncated headers, valid headers with random fields —
// through a switch with learning, object routes, LPM routes, and
// registers all enabled. The switch must neither panic nor wedge, and
// its counters must account for every frame.
func TestSwitchSurvivesRandomFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := newFabric(t, SwitchConfig{LearnStations: true, Station: 700}, 3)
	if err := f.sw.EnableRegisters(4); err != nil {
		t.Fatal(err)
	}
	// A few real routes so random frames can hit them.
	f.sw.InstallObjectRoute(wire.ValueOfID(gen.New()), 1)
	f.sw.InstallStationRoute(2, 1)

	const n = 3000
	for i := 0; i < n; i++ {
		var fr netsim.Frame
		switch rng.Intn(3) {
		case 0: // pure garbage
			fr = make(netsim.Frame, rng.Intn(150))
			rng.Read(fr)
		case 1: // valid header, random fields, random payload
			h := wire.Header{
				Type:   wire.MsgType(rng.Intn(12)),
				Flags:  wire.Flags(rng.Uint32()),
				Src:    wire.StationID(rng.Intn(6)),
				Dst:    wire.StationID(rng.Intn(6)),
				Object: gen.New(),
				Seq:    rng.Uint64(),
			}
			if rng.Intn(4) == 0 {
				h.Dst = wire.StationBroadcast
			}
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			fr, _ = wire.Encode(&h, payload)
		default: // valid header then corrupted byte
			h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: uint64(i)}
			fr, _ = wire.Encode(&h, []byte{1, 2, 3})
			fr[rng.Intn(len(fr))] ^= 0xFF
		}
		f.hosts[rng.Intn(3)].Send(fr)
		if i%100 == 0 {
			f.sim.Run() // drain periodically so queues stay bounded
		}
	}
	f.sim.Run()
	c := f.sw.Counters()
	if c.FramesIn != n {
		t.Fatalf("FramesIn = %d, want %d", c.FramesIn, n)
	}
	if c.ParseDrops == 0 {
		t.Fatal("no parse drops on garbage input")
	}
	// The switch still forwards correctly afterward.
	f.sw.ResetCounters()
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1 << 60,
	}))
	f.sim.Run()
	if f.sw.Counters().Flooded != 1 {
		t.Fatal("switch wedged after fuzz")
	}
}

// TestRegisterServiceSurvivesShortPayloads sends register frames with
// truncated and oversized payloads.
func TestRegisterServiceSurvivesShortPayloads(t *testing.T) {
	f := newFabric(t, SwitchConfig{Station: 700}, 2)
	f.sw.EnableRegisters(2)
	svc := gen.New()
	f.sw.ObjectTable().Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOfID(svc)}},
		Action: Action{Type: ActRegisters},
	})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		h := wire.Header{
			Type: wire.MsgCtrl, Flags: wire.FlagRouteOnObject,
			Src: 1, Dst: wire.StationAny, Object: svc, Seq: uint64(i + 1),
		}
		payload := make([]byte, rng.Intn(40))
		rng.Read(payload)
		fr, _ := wire.Encode(&h, payload)
		f.hosts[0].Send(fr)
	}
	f.sim.Run()
	// Registers may have moved, but nothing crashed and replies came
	// back for every distinct request.
	if got := len(f.got[0]); got != 200 {
		t.Fatalf("replies = %d", got)
	}
}
