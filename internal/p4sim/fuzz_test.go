package p4sim

import (
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestSwitchSurvivesRandomFrames feeds thousands of random frames —
// garbage, truncated headers, valid headers with random fields —
// through a switch with learning, object routes, LPM routes, and
// registers all enabled. The switch must neither panic nor wedge, and
// its counters must account for every frame.
func TestSwitchSurvivesRandomFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := newFabric(t, SwitchConfig{LearnStations: true, Station: 700}, 3)
	if err := f.sw.EnableRegisters(4); err != nil {
		t.Fatal(err)
	}
	// A few real routes so random frames can hit them.
	f.sw.InstallObjectRoute(wire.ValueOfID(gen.New()), 1)
	f.sw.InstallStationRoute(2, 1)

	const n = 3000
	for i := 0; i < n; i++ {
		var fr netsim.Frame
		switch rng.Intn(3) {
		case 0: // pure garbage
			fr = make(netsim.Frame, rng.Intn(150))
			rng.Read(fr)
		case 1: // valid header, random fields, random payload
			h := wire.Header{
				Type:   wire.MsgType(rng.Intn(12)),
				Flags:  wire.Flags(rng.Uint32()),
				Src:    wire.StationID(rng.Intn(6)),
				Dst:    wire.StationID(rng.Intn(6)),
				Object: gen.New(),
				Seq:    rng.Uint64(),
			}
			if rng.Intn(4) == 0 {
				h.Dst = wire.StationBroadcast
			}
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			fr, _ = wire.Encode(&h, payload)
		default: // valid header then corrupted byte
			h := wire.Header{Type: wire.MsgMem, Src: 1, Dst: 2, Seq: uint64(i)}
			fr, _ = wire.Encode(&h, []byte{1, 2, 3})
			fr[rng.Intn(len(fr))] ^= 0xFF
		}
		f.hosts[rng.Intn(3)].Send(fr)
		if i%100 == 0 {
			f.sim.Run() // drain periodically so queues stay bounded
		}
	}
	f.sim.Run()
	c := f.sw.Counters()
	if c.FramesIn != n {
		t.Fatalf("FramesIn = %d, want %d", c.FramesIn, n)
	}
	if c.ParseDrops == 0 {
		t.Fatal("no parse drops on garbage input")
	}
	// The switch still forwards correctly afterward.
	f.sw.ResetCounters()
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1 << 60,
	}))
	f.sim.Run()
	if f.sw.Counters().Flooded != 1 {
		t.Fatal("switch wedged after fuzz")
	}
}

// TestRegisterServiceSurvivesShortPayloads sends register frames with
// truncated and oversized payloads.
func TestRegisterServiceSurvivesShortPayloads(t *testing.T) {
	f := newFabric(t, SwitchConfig{Station: 700}, 2)
	f.sw.EnableRegisters(2)
	svc := gen.New()
	f.sw.ObjectTable().Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOfID(svc)}},
		Action: Action{Type: ActRegisters},
	})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		h := wire.Header{
			Type: wire.MsgCtrl, Flags: wire.FlagRouteOnObject,
			Src: 1, Dst: wire.StationAny, Object: svc, Seq: uint64(i + 1),
		}
		payload := make([]byte, rng.Intn(40))
		rng.Read(payload)
		fr, _ := wire.Encode(&h, payload)
		f.hosts[0].Send(fr)
	}
	f.sim.Run()
	// Registers may have moved, but nothing crashed and replies came
	// back for every distinct request.
	if got := len(f.got[0]); got != 200 {
		t.Fatalf("replies = %d", got)
	}
}

// recordingInc is a stub IncProgram: it counts the frames the hook
// shows it and consumes per the verdict function.
type recordingInc struct {
	seen    int
	consume func(h *wire.Header) bool
}

func (r *recordingInc) HandleFrame(_ int, h *wire.Header, _ netsim.Frame) bool {
	r.seen++
	return r.consume(h)
}

// incFuzzFrames replays one seeded random frame mix — including the
// INC message types — into a fabric.
func incFuzzFrames(f *fabric, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	types := []wire.MsgType{
		wire.MsgMem, wire.MsgIncInv, wire.MsgIncAck, wire.MsgHello, wire.MsgCtrl,
	}
	for i := 0; i < n; i++ {
		var fr netsim.Frame
		if rng.Intn(4) == 0 {
			fr = make(netsim.Frame, rng.Intn(120))
			rng.Read(fr)
		} else {
			h := wire.Header{
				Type:   types[rng.Intn(len(types))],
				Flags:  wire.Flags(rng.Uint32()),
				Src:    wire.StationID(rng.Intn(6)),
				Dst:    wire.StationID(rng.Intn(6)),
				Object: gen.New(),
				Seq:    rng.Uint64(),
			}
			payload := make([]byte, rng.Intn(40))
			rng.Read(payload)
			fr, _ = wire.Encode(&h, payload)
		}
		f.hosts[rng.Intn(len(f.hosts))].Send(fr)
		if i%100 == 0 {
			f.sim.Run()
		}
	}
	f.sim.Run()
}

// TestIncHookPipelineInvariants pins the IncProgram attachment
// contract under random INC-typed traffic: the hook sees exactly the
// frames that parse, a declining program leaves the pipeline's
// behavior bit-identical to no program at all, and a consuming
// program suppresses all forwarding without wedging the switch.
func TestIncHookPipelineInvariants(t *testing.T) {
	const n = 2000
	run := func(consume func(h *wire.Header) bool) (*fabric, *recordingInc, Counters) {
		f := newFabric(t, SwitchConfig{LearnStations: true, Station: 700}, 3)
		f.sw.InstallStationRoute(2, 1)
		var r *recordingInc
		if consume != nil {
			r = &recordingInc{consume: consume}
			f.sw.SetIncProgram(r)
		}
		incFuzzFrames(f, 42, n)
		return f, r, f.sw.Counters()
	}

	_, _, base := run(nil)
	_, decline, transparent := run(func(*wire.Header) bool { return false })
	if transparent != base {
		t.Fatalf("declining program changed the pipeline:\n  with    %+v\n  without %+v",
			transparent, base)
	}
	if want := int(base.FramesIn - base.ParseDrops); decline.seen != want {
		t.Fatalf("hook saw %d frames, want every parsed frame (%d)", decline.seen, want)
	}

	f, all, consumed := run(func(*wire.Header) bool { return true })
	if all.seen != decline.seen {
		t.Fatalf("consume-all saw %d frames, decline saw %d", all.seen, decline.seen)
	}
	if consumed.FramesOut != 0 || consumed.Flooded != 0 {
		t.Fatalf("consumed frames still forwarded: %+v", consumed)
	}
	// The switch still forwards once the program declines again.
	all.consume = func(*wire.Header) bool { return false }
	f.sw.ResetCounters()
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1 << 59,
	}))
	f.sim.Run()
	if f.sw.Counters().Flooded != 1 {
		t.Fatal("switch wedged after consume-all fuzz")
	}
}
