package p4sim

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/oid"
	"repro/internal/wire"
)

// fabric is a star of one switch with three hosts for switch tests.
type fabric struct {
	sim   *netsim.Sim
	net   *netsim.Network
	sw    *Switch
	hosts []*netsim.Host
	got   [][]wire.Header
}

func newFabric(t *testing.T, cfg SwitchConfig, nHosts int) *fabric {
	t.Helper()
	sim := netsim.NewSim(3)
	net := netsim.NewNetwork(sim)
	sw, err := NewSwitch(net, "sw0", nHosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &fabric{sim: sim, net: net, sw: sw, got: make([][]wire.Header, nHosts)}
	for i := 0; i < nHosts; i++ {
		h, err := netsim.NewHost(net, "h"+string(rune('0'+i)))
		if err != nil {
			t.Fatal(err)
		}
		i := i
		h.OnFrame = func(fr netsim.Frame) {
			var hd wire.Header
			if err := hd.DecodeFrom(fr); err == nil {
				f.got[i] = append(f.got[i], hd)
			}
		}
		if err := net.Connect(h, 0, sw, i, netsim.LinkConfig{Latency: netsim.Microsecond}); err != nil {
			t.Fatal(err)
		}
		f.hosts = append(f.hosts, h)
	}
	return f
}

func frame(t *testing.T, h wire.Header) netsim.Frame {
	t.Helper()
	fr, err := wire.Encode(&h, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestBroadcastFloods(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 3)
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgDiscover, Src: 1, Dst: wire.StationBroadcast, Seq: 1,
	}))
	f.sim.Run()
	if len(f.got[0]) != 0 {
		t.Fatal("broadcast echoed to sender")
	}
	if len(f.got[1]) != 1 || len(f.got[2]) != 1 {
		t.Fatalf("broadcast delivery: %d, %d", len(f.got[1]), len(f.got[2]))
	}
	if f.sw.Counters().Flooded != 1 {
		t.Fatalf("Flooded = %d", f.sw.Counters().Flooded)
	}
}

func TestBroadcastDedupSuppressesDuplicates(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 3)
	h := wire.Header{Type: wire.MsgDiscover, Src: 1, Dst: wire.StationBroadcast, Seq: 9}
	f.hosts[0].Send(frame(t, h))
	f.hosts[0].Send(frame(t, h)) // identical (src,seq,type): loop replica
	f.sim.Run()
	if len(f.got[1]) != 1 {
		t.Fatalf("dedup failed: host1 saw %d copies", len(f.got[1]))
	}
	// Different seq passes.
	h.Seq = 10
	f.hosts[0].Send(frame(t, h))
	f.sim.Run()
	if len(f.got[1]) != 2 {
		t.Fatalf("new seq suppressed: %d", len(f.got[1]))
	}
}

func TestStationLearningUnicast(t *testing.T) {
	f := newFabric(t, SwitchConfig{LearnStations: true}, 3)
	// Host 1 (station 2) speaks first so the switch learns it.
	f.hosts[1].Send(frame(t, wire.Header{
		Type: wire.MsgHello, Src: 2, Dst: wire.StationBroadcast, Seq: 1,
	}))
	f.sim.Run()
	if f.sw.Counters().LearnedHosts != 1 {
		t.Fatalf("LearnedHosts = %d", f.sw.Counters().LearnedHosts)
	}
	// Now host 0 unicasts to station 2: must go only to host 1.
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Src: 1, Dst: 2, Seq: 2,
	}))
	f.sim.Run()
	if len(f.got[1]) != 1 { // hello flood did not reach its own sender
		t.Fatalf("host1 frames = %d", len(f.got[1]))
	}
	if got := f.got[2]; len(got) != 1 || got[0].Type != wire.MsgHello {
		t.Fatalf("host2 should only have seen the hello flood, got %d", len(got))
	}
	if f.sw.Counters().StationHits != 1 {
		t.Fatalf("StationHits = %d", f.sw.Counters().StationHits)
	}
}

func TestUnknownUnicastFloods(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 3)
	f.hosts[0].Send(frame(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 42, Seq: 1}))
	f.sim.Run()
	if len(f.got[1]) != 1 || len(f.got[2]) != 1 {
		t.Fatalf("unknown unicast flood: %d, %d", len(f.got[1]), len(f.got[2]))
	}
}

func TestObjectRouting(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 3)
	id := gen.New()
	if err := f.sw.InstallObjectRoute(wire.ValueOfID(id), 2); err != nil {
		t.Fatal(err)
	}
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagRouteOnObject,
		Src: 1, Dst: 99, Object: id, Seq: 1,
	}))
	f.sim.Run()
	if len(f.got[2]) != 1 {
		t.Fatalf("object route delivery: %d", len(f.got[2]))
	}
	if len(f.got[1]) != 0 {
		t.Fatal("object-routed frame flooded")
	}
	if f.sw.Counters().ObjectHits != 1 {
		t.Fatalf("ObjectHits = %d", f.sw.Counters().ObjectHits)
	}
	// Removal falls back to (unknown-unicast) flooding.
	if !f.sw.RemoveObjectRoute(wire.ValueOfID(id)) {
		t.Fatal("RemoveObjectRoute = false")
	}
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagRouteOnObject,
		Src: 1, Dst: 99, Object: id, Seq: 2,
	}))
	f.sim.Run()
	if len(f.got[1]) != 1 {
		t.Fatal("after removal, frame should flood")
	}
}

func TestObjectMissHook(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 2)
	var missed []oid.ID
	f.sw.OnMiss = func(h *wire.Header) { missed = append(missed, h.Object) }
	id := gen.New()
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagRouteOnObject, Src: 1, Dst: 5, Object: id, Seq: 1,
	}))
	f.sim.Run()
	if len(missed) != 1 || missed[0] != id {
		t.Fatalf("OnMiss = %v", missed)
	}
}

func TestParseDrop(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 2)
	f.hosts[0].Send(netsim.Frame("garbage frame, not GASP"))
	f.sim.Run()
	if f.sw.Counters().ParseDrops != 1 {
		t.Fatalf("ParseDrops = %d", f.sw.Counters().ParseDrops)
	}
}

func TestForwardToIngressDropped(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 2)
	id := gen.New()
	f.sw.InstallObjectRoute(wire.ValueOfID(id), 0) // back at the sender
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagRouteOnObject, Src: 1, Dst: 9, Object: id, Seq: 1,
	}))
	f.sim.Run()
	if len(f.got[0]) != 0 {
		t.Fatal("frame hairpinned to ingress")
	}
	if f.sw.Counters().Dropped != 1 {
		t.Fatalf("Dropped = %d", f.sw.Counters().Dropped)
	}
}

func TestPipelineDelayApplied(t *testing.T) {
	f := newFabric(t, SwitchConfig{PipelineDelay: 10 * netsim.Microsecond}, 2)
	var at netsim.Time
	f.hosts[1].OnFrame = func(fr netsim.Frame) { at = f.sim.Now() }
	f.hosts[0].Send(frame(t, wire.Header{Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1}))
	f.sim.Run()
	// 1µs link + 10µs pipeline + 1µs link.
	if at != netsim.Time(12*netsim.Microsecond) {
		t.Fatalf("arrival at %v", netsim.Duration(at))
	}
}

func TestInstallStationRoute(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 3)
	if err := f.sw.InstallStationRoute(7, 2); err != nil {
		t.Fatal(err)
	}
	f.hosts[0].Send(frame(t, wire.Header{Type: wire.MsgMem, Src: 1, Dst: 7, Seq: 1}))
	f.sim.Run()
	if len(f.got[2]) != 1 || len(f.got[1]) != 0 {
		t.Fatalf("station route: h2=%d h1=%d", len(f.got[2]), len(f.got[1]))
	}
}

func TestLearnFailureWhenStationTableFull(t *testing.T) {
	// Budget for 3 station entries.
	f := newFabric(t, SwitchConfig{LearnStations: true, StationTableMemory: 64}, 2)
	for i := 1; i <= 5; i++ {
		f.hosts[0].Send(frame(t, wire.Header{
			Type: wire.MsgHello, Src: wire.StationID(100 + i), Dst: wire.StationBroadcast, Seq: uint64(i),
		}))
	}
	f.sim.Run()
	c := f.sw.Counters()
	if c.LearnedHosts != 3 || c.LearnFailures != 2 {
		t.Fatalf("learned=%d failures=%d", c.LearnedHosts, c.LearnFailures)
	}
}

func TestObjectLPMRouting(t *testing.T) {
	f := newFabric(t, SwitchConfig{ObjectLPM: true}, 3)
	prefix := oid.ID{Hi: 0x0002_0000_0000_0000}
	if err := f.sw.InstallObjectPrefix(wire.ValueOfID(prefix), 16, 2); err != nil {
		t.Fatal(err)
	}
	// Any object under the /16 routes to port 2 with one rule.
	for _, id := range []oid.ID{
		{Hi: 0x0002_1234_5678_9ABC, Lo: 42},
		{Hi: 0x0002_FFFF_0000_0000, Lo: 7},
	} {
		f.hosts[0].Send(frame(t, wire.Header{
			Type: wire.MsgMem, Flags: wire.FlagRouteOnObject,
			Src: 1, Dst: wire.StationAny, Object: id, Seq: id.Lo,
		}))
	}
	f.sim.Run()
	if len(f.got[2]) != 2 {
		t.Fatalf("LPM delivery: %d frames", len(f.got[2]))
	}
	// Outside the prefix: dropped (route-on-object miss, StationAny).
	f.hosts[0].Send(frame(t, wire.Header{
		Type: wire.MsgMem, Flags: wire.FlagRouteOnObject,
		Src: 1, Dst: wire.StationAny, Object: oid.ID{Hi: 0x0003_0000_0000_0000, Lo: 1}, Seq: 99,
	}))
	f.sim.Run()
	if len(f.got[2]) != 2 || len(f.got[1]) != 0 {
		t.Fatal("out-of-prefix frame was forwarded")
	}
	if f.sw.Counters().ObjectMisses != 1 {
		t.Fatalf("ObjectMisses = %d", f.sw.Counters().ObjectMisses)
	}
}

func TestRegisterServiceDirect(t *testing.T) {
	f := newFabric(t, SwitchConfig{Station: 500}, 2)
	if err := f.sw.EnableRegisters(2); err != nil {
		t.Fatal(err)
	}
	svc := gen.New()
	if err := f.sw.ObjectTable().Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOfID(svc)}},
		Action: Action{Type: ActRegisters},
	}); err != nil {
		t.Fatal(err)
	}
	h := wire.Header{
		Type: wire.MsgCtrl, Flags: wire.FlagRouteOnObject,
		Src: 1, Dst: wire.StationAny, Object: svc, Seq: 1,
	}
	fr, _ := wire.Encode(&h, EncodeRegisterReq(RegFetchAdd, 0, 5, 0))
	f.hosts[0].Send(fr)
	f.sim.Run()
	if len(f.got[0]) != 1 {
		t.Fatalf("no register reply (got %d frames)", len(f.got[0]))
	}
	resp := f.got[0][0]
	if resp.Src != 500 || resp.Ack != 1 || resp.Flags&wire.FlagResponse == 0 {
		t.Fatalf("reply header = %+v", resp)
	}
	if got := f.sw.Registers(); got[0] != 5 {
		t.Fatalf("register = %d", got[0])
	}
	// Duplicate (retransmit): served from cache, no re-execution.
	f.hosts[0].Send(fr)
	f.sim.Run()
	if got := f.sw.Registers(); got[0] != 5 {
		t.Fatalf("duplicate re-executed: register = %d", got[0])
	}
	if f.sw.Counters().RegisterOps != 1 {
		t.Fatalf("RegisterOps = %d", f.sw.Counters().RegisterOps)
	}
}

func TestCountersAndString(t *testing.T) {
	f := newFabric(t, SwitchConfig{}, 2)
	f.hosts[0].Send(frame(t, wire.Header{Type: wire.MsgHello, Src: 1, Dst: wire.StationBroadcast, Seq: 1}))
	f.sim.Run()
	if f.sw.Counters().FramesIn != 1 {
		t.Fatalf("FramesIn = %d", f.sw.Counters().FramesIn)
	}
	f.sw.ResetCounters()
	if f.sw.Counters() != (Counters{}) {
		t.Fatal("ResetCounters")
	}
	if f.sw.String() == "" {
		t.Fatal("String empty")
	}
	if f.sw.ObjectTable() == nil || f.sw.StationTable() == nil {
		t.Fatal("table accessors")
	}
}
