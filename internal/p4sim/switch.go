package p4sim

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// SwitchConfig configures a switch's data plane.
type SwitchConfig struct {
	// PipelineDelay is the per-frame processing latency ("switch
	// processing overhead is minimal", §4 — default 1µs).
	PipelineDelay netsim.Duration
	// ObjectTableMemory is the SRAM budget for the object-routing
	// table (0 = DefaultTableMemory, negative = unlimited).
	ObjectTableMemory int
	// StationTableMemory is the SRAM budget for the station table.
	StationTableMemory int
	// LearnStations enables data-plane source-station learning
	// (L2-learning analogue), required by the E2E scheme.
	LearnStations bool
	// ObjectKeyBits64 makes the object table match on a 64-bit fold
	// of the object ID instead of the full 128 bits — the two key
	// widths compared in §3.2's capacity discussion.
	ObjectKeyBits64 bool
	// Station gives the switch an identity for in-switch services
	// (register replies); 0 disables.
	Station wire.StationID
	// ObjectLPM builds the object table with longest-prefix matching
	// instead of exact entries — the hierarchical identifier overlay
	// scheme of §3.2, trading per-object precision for one rule per
	// prefix.
	ObjectLPM bool
	// ObjectEviction selects what the object table does at SRAM
	// capacity: reject installs (EvictNone, the default), or recycle
	// entries LRU/CLOCK-style so a hot working set stays resident
	// under table pressure.
	ObjectEviction EvictionPolicy
	// ObjectMiss selects the fallback for object-routed frames that
	// miss the object table and carry no concrete destination
	// (Dst == StationAny): drop (default; sender times out and
	// rediscovers), flood, or punt to the controller CPU port. The
	// choice is the measured flood-vs-punt tradeoff of E12.
	ObjectMiss MissPolicy
	// SeenCapacity bounds the broadcast dedup filter (a P4 register
	// array); 0 selects DefaultSeenCapacity.
	SeenCapacity int
	// RegCacheCapacity bounds the at-most-once register reply cache;
	// 0 selects DefaultRegCacheCapacity. E12 shrinks both to model
	// small-register switches.
	RegCacheCapacity int
	// PuntUplink redirects ActToController out port 0 (the uplink in a
	// leaf-spine fabric) instead of the local CPU port, so punts from
	// edge switches climb toward the switch whose CPU port hosts the
	// shard manager.
	PuntUplink bool
}

// MissPolicy selects the object-table miss fallback for frames with
// no concrete destination station.
type MissPolicy uint8

// Miss policies.
const (
	// MissDrop discards the frame (the pre-existing behavior and the
	// zero value): the sender's timeout drives rediscovery.
	MissDrop MissPolicy = iota
	// MissFlood floods the frame like unknown unicast. Every miss
	// costs fabric bandwidth on all ports, but the object is found in
	// one round trip.
	MissFlood
	// MissPunt forwards the frame to the controller CPU port, which
	// can reinstall the rule and forward — slower per miss, no
	// fabric-wide amplification.
	MissPunt
)

// String names the miss policy.
func (p MissPolicy) String() string {
	switch p {
	case MissDrop:
		return "drop"
	case MissFlood:
		return "flood"
	case MissPunt:
		return "punt"
	}
	return fmt.Sprintf("miss(%d)", uint8(p))
}

// Default capacities for the switch's register-backed structures.
const (
	// DefaultSeenCapacity bounds the broadcast dedup filter.
	DefaultSeenCapacity = 8192
	// DefaultRegCacheCapacity bounds the register reply cache.
	DefaultRegCacheCapacity = 4096
)

// Counters aggregates switch data-plane statistics.
type Counters struct {
	FramesIn      uint64
	FramesOut     uint64
	Flooded       uint64 // flood events (one per frame flooded)
	ObjectHits    uint64
	ObjectMisses  uint64
	StationHits   uint64
	ParseDrops    uint64
	Dropped       uint64
	ToController  uint64
	LearnedHosts  uint64
	LearnFailures uint64 // station table full
	RegisterOps   uint64 // in-switch atomic operations served
	FilterHits    uint64 // packet-subscription filter matches
	MissFloods    uint64 // object-table misses resolved by flooding
	MissPunts     uint64 // object-table misses punted to the controller
}

// Switch is a store-and-forward device running a fixed object-routing
// program over programmable tables:
//
//  1. broadcast destinations flood;
//  2. frames flagged route-on-object consult the object table;
//  3. otherwise (or on miss) the station table forwards to the
//     destination station;
//  4. unknown unicast floods (so discovery works before learning).
type Switch struct {
	name string
	net  *netsim.Network
	cfg  SwitchConfig

	objTable     *Table
	stationTable *Table
	filterTable  *Table // optional packet-subscription filters
	counters     Counters

	// Broadcast dedup filter (P4-register analogue) so flooded frames
	// do not storm in topologies with loops: a bounded ring of
	// recently seen (src, seq, type) tuples.
	seen     map[bcastKey]struct{}
	seenRing []bcastKey
	seenNext int

	// registers backs in-switch atomic services (see registers.go);
	// replySeq numbers the switch's own reply frames; regCache is the
	// at-most-once reply cache.
	registers []uint64
	replySeq  uint64
	regCache  map[regKey]netsim.Frame
	regRing   []regKey
	regNext   int

	// OnMiss, when non-nil, observes object-table misses for frames
	// flagged route-on-object (used by hybrid discovery).
	OnMiss func(h *wire.Header)

	// inc is the attached in-network computation program (see inc.go);
	// nil means the ingress hook costs one pointer test.
	inc IncProgram

	// rxHdr is the ingress parse scratch, reused across frames: the
	// header would otherwise escape to the heap on every ingress (the
	// IncProgram interface call defeats escape analysis). Safe because
	// the simulator is single-threaded and onward sends are scheduled,
	// never synchronous re-entries into this switch.
	rxHdr wire.Header

	tracer *trace.Recorder
}

// NewSwitch creates and registers a switch with numPorts ports.
func NewSwitch(net *netsim.Network, name string, numPorts int, cfg SwitchConfig) (*Switch, error) {
	if cfg.PipelineDelay == 0 {
		cfg.PipelineDelay = netsim.Microsecond
	}
	if cfg.SeenCapacity <= 0 {
		cfg.SeenCapacity = DefaultSeenCapacity
	}
	if cfg.RegCacheCapacity <= 0 {
		cfg.RegCacheCapacity = DefaultRegCacheCapacity
	}
	objField := wire.FieldObject
	if cfg.ObjectKeyBits64 {
		// A 64-bit key mode: match on the source-station-width field
		// fold. We model it by matching the Seq field slot repurposed
		// as an ID hash; in practice experiments use the capacity
		// model directly, but the table is fully functional.
		objField = wire.FieldSeq
	}
	objKind := MatchExact
	if cfg.ObjectLPM {
		objKind = MatchLPM
	}
	objTable, err := NewTable(name+"/obj", []Key{{Field: objField, Kind: objKind}},
		TableConfig{MemoryBytes: cfg.ObjectTableMemory, Eviction: cfg.ObjectEviction})
	if err != nil {
		return nil, err
	}
	stTable, err := NewTable(name+"/station", []Key{{Field: wire.FieldDst, Kind: MatchExact}},
		TableConfig{MemoryBytes: cfg.StationTableMemory})
	if err != nil {
		return nil, err
	}
	sw := &Switch{
		name: name, net: net, cfg: cfg,
		objTable: objTable, stationTable: stTable,
		seen:     make(map[bcastKey]struct{}, cfg.SeenCapacity),
		seenRing: make([]bcastKey, cfg.SeenCapacity),
	}
	if err := net.AddDevice(sw, numPorts); err != nil {
		return nil, err
	}
	return sw, nil
}

// DevName implements netsim.Device.
func (sw *Switch) DevName() string { return sw.name }

// ObjectTable exposes the object-routing table to control planes.
func (sw *Switch) ObjectTable() *Table { return sw.objTable }

// StationTable exposes the station-forwarding table.
func (sw *Switch) StationTable() *Table { return sw.stationTable }

// SetFilterTable installs a packet-subscription filter table (see
// package pubsub); it is consulted before normal forwarding, and a
// hit overrides the forwarding decision — pub/sub-determined
// forwarding in the style of Packet Subscriptions [17]. Pass nil to
// remove.
func (sw *Switch) SetFilterTable(t *Table) { sw.filterTable = t }

// FilterTable returns the installed filter table (nil if none).
func (sw *Switch) FilterTable() *Table { return sw.filterTable }

// SetTracer attaches a span recorder: every traced frame through the
// pipeline gets a switch span annotated with its table lookups.
func (sw *Switch) SetTracer(r *trace.Recorder) { sw.tracer = r }

// Counters returns a copy of the switch counters.
func (sw *Switch) Counters() Counters { return sw.counters }

// ResetCounters zeroes the counters.
func (sw *Switch) ResetCounters() { sw.counters = Counters{} }

// InstallObjectRoute programs object→port forwarding (the controller
// scheme's rule, §4).
func (sw *Switch) InstallObjectRoute(h wire.Value, port int) error {
	return sw.objTable.Insert(Entry{
		Match:  []KeyValue{{Value: h}},
		Action: Action{Type: ActForward, Port: port},
	})
}

// InstallObjectPrefix programs prefix→port forwarding on an LPM
// object table; longer prefixes win.
func (sw *Switch) InstallObjectPrefix(v wire.Value, bits, port int) error {
	return sw.objTable.Insert(Entry{
		Match:    []KeyValue{{Value: v, PrefixBits: bits}},
		Priority: bits,
		Action:   Action{Type: ActForward, Port: port},
	})
}

// RemoveObjectRoute deletes an object rule; reports whether it existed.
func (sw *Switch) RemoveObjectRoute(h wire.Value) bool {
	return sw.objTable.Delete([]KeyValue{{Value: h}})
}

// InstallStationRoute programs station→port forwarding.
func (sw *Switch) InstallStationRoute(st wire.StationID, port int) error {
	return sw.stationTable.Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOf(uint64(st))}},
		Action: Action{Type: ActForward, Port: port},
	})
}

// WipeTables clears both match-action tables, modeling a switch
// reboot or control-plane fault that loses programmed state. The
// filter table (a separate control plane) is left alone. Forwarding
// degrades to flooding/learning until rules are re-installed.
func (sw *Switch) WipeTables() {
	sw.objTable.Clear()
	sw.stationTable.Clear()
}

// Recv implements netsim.Device: the ingress pipeline for unpooled
// frames.
func (sw *Switch) Recv(port int, fr netsim.Frame) {
	sw.ingress(port, fr, nil)
}

// RecvBuf implements netsim.BufReceiver: pooled frames enter the same
// pipeline with their buffer, retained once per onward transmission.
func (sw *Switch) RecvBuf(port int, fr netsim.Frame, buf netsim.FrameBuffer) {
	sw.ingress(port, fr, buf)
}

func (sw *Switch) ingress(port int, fr netsim.Frame, buf netsim.FrameBuffer) {
	sw.counters.FramesIn++
	h := &sw.rxHdr
	if err := h.DecodeFrom(fr); err != nil {
		sw.counters.ParseDrops++
		return
	}

	// Source-station learning (data plane).
	if sw.cfg.LearnStations && h.Src != wire.StationBroadcast {
		if _, known := sw.stationTable.Lookup(&wire.Header{Dst: h.Src}); !known {
			err := sw.stationTable.Insert(Entry{
				Match:  []KeyValue{{Value: wire.ValueOf(uint64(h.Src))}},
				Action: Action{Type: ActForward, Port: port},
			})
			if err != nil {
				sw.counters.LearnFailures++
			} else {
				sw.counters.LearnedHosts++
			}
		}
	}

	// In-network computation: the attached program sees the frame
	// before the forwarding decision and may consume it (serve a read
	// from the cache, replicate a multicast invalidation, absorb an
	// ack into an aggregate).
	if sw.inc != nil && sw.inc.HandleFrame(port, h, fr) {
		return
	}

	var sp *trace.Span
	if sw.tracer != nil && h.Flags&wire.FlagTraced != 0 {
		sp = sw.tracer.StartSpan(trace.Ctx{Trace: h.TraceID, Span: h.SpanID},
			trace.KindSwitch, "sw:"+sw.name)
	}
	act := sw.decide(h, sp)
	if act.Type == ActRegisters {
		sp.SetAttr("action", "registers")
		sp.End()
		sw.handleRegisters(port, h, fr)
		return
	}
	if act.Type == ActDrop {
		sp.SetAttr("action", "drop")
		sp.End()
	} else {
		// The frame occupies the pipeline until it is emitted.
		sp.EndAt(sw.net.Sim().Now().Add(sw.cfg.PipelineDelay))
	}
	sw.emit(port, fr, buf, act)
}

// bcastKey identifies a broadcast frame for duplicate suppression.
type bcastKey struct {
	src wire.StationID
	seq uint64
	typ wire.MsgType
}

// dupBroadcast records the frame and reports whether it was already
// seen (i.e., it is re-entering this switch through a topology loop).
func (sw *Switch) dupBroadcast(h *wire.Header) bool {
	k := bcastKey{src: h.Src, seq: h.Seq, typ: h.Type}
	if _, dup := sw.seen[k]; dup {
		return true
	}
	old := sw.seenRing[sw.seenNext]
	if old != (bcastKey{}) {
		delete(sw.seen, old)
	}
	sw.seenRing[sw.seenNext] = k
	sw.seenNext = (sw.seenNext + 1) % sw.cfg.SeenCapacity
	sw.seen[k] = struct{}{}
	return false
}

// decide runs the match-action program. sp (nil when untraced) is
// annotated with every table consulted and its hit/miss outcome.
func (sw *Switch) decide(h *wire.Header, sp *trace.Span) Action {
	// Duplicate suppression first so pub/sub actions on broadcast
	// frames cannot loop.
	if h.Dst == wire.StationBroadcast && sw.dupBroadcast(h) {
		sp.SetAttr("bcast", "dup")
		return Action{Type: ActDrop}
	}
	if sw.filterTable != nil {
		if act, ok := sw.filterTable.Lookup(h); ok {
			sw.counters.FilterHits++
			sp.SetAttr("filter", "hit")
			return act
		}
		sp.SetAttr("filter", "miss")
	}
	if h.Dst == wire.StationBroadcast {
		sp.SetAttr("action", "flood")
		return Action{Type: ActFlood}
	}
	if h.Flags&wire.FlagRouteOnObject != 0 {
		if act, ok := sw.objTable.Lookup(h); ok {
			sw.counters.ObjectHits++
			sp.SetAttr("obj", "hit")
			return act
		}
		sw.counters.ObjectMisses++
		sp.SetAttr("obj", "miss")
		if sw.OnMiss != nil {
			// Hand the hook its own copy: an unknown callee would
			// otherwise force every ingress header to the heap.
			hh := *h
			sw.OnMiss(&hh)
		}
		// An object-routed frame with no concrete destination cannot
		// fall back to station forwarding. The configured miss policy
		// decides its fate: drop (sender times out and rediscovers),
		// flood (finds the object at fabric-bandwidth cost), or punt
		// to the controller CPU port.
		if h.Dst == wire.StationAny {
			switch sw.cfg.ObjectMiss {
			case MissFlood:
				// Miss-floods go through the dedup filter so a frame
				// flooded back to this switch (e.g. over a parallel
				// punt link) cannot storm.
				if sw.dupBroadcast(h) {
					sp.SetAttr("action", "miss-flood-dup")
					return Action{Type: ActDrop}
				}
				sw.counters.MissFloods++
				sp.SetAttr("action", "miss-flood")
				return Action{Type: ActFlood}
			case MissPunt:
				sw.counters.MissPunts++
				sp.SetAttr("action", "miss-punt")
				return Action{Type: ActToController}
			default:
				return Action{Type: ActDrop}
			}
		}
	}
	if act, ok := sw.stationTable.Lookup(h); ok {
		sw.counters.StationHits++
		sp.SetAttr("station", "hit")
		return act
	}
	// Unknown unicast: flood so it still reaches its station.
	sp.SetAttr("station", "miss")
	sp.SetAttr("action", "flood")
	return Action{Type: ActFlood}
}

// emit executes a forwarding decision. Each scheduled transmission of
// the borrowed frame retains its buffer once; the SendBuf it ends in
// consumes that reference.
func (sw *Switch) emit(ingress int, fr netsim.Frame, buf netsim.FrameBuffer, act Action) {
	delay := sw.cfg.PipelineDelay
	send := func(port int) {
		sw.counters.FramesOut++
		if buf != nil {
			buf.Retain()
		}
		sw.net.SendBufAfter(sw, port, fr, buf, delay)
	}
	switch act.Type {
	case ActDrop:
		sw.counters.Dropped++
	case ActForward:
		if act.Port == ingress {
			// Forwarding back out the ingress port would loop.
			sw.counters.Dropped++
			return
		}
		send(act.Port)
	case ActFlood:
		sw.counters.Flooded++
		n := sw.net.NumPorts(sw)
		for p := 0; p < n; p++ {
			if p == ingress || !sw.net.Connected(sw, p) {
				continue
			}
			send(p)
		}
	case ActToController:
		sw.counters.ToController++
		// The CPU port is conventionally the highest-numbered port;
		// edge switches may instead punt up their uplink.
		cpu := sw.net.NumPorts(sw) - 1
		if sw.cfg.PuntUplink {
			cpu = 0
		}
		if cpu != ingress && sw.net.Connected(sw, cpu) {
			send(cpu)
		}
	default:
		sw.counters.Dropped++
	}
}

// String describes the switch.
func (sw *Switch) String() string {
	return fmt.Sprintf("switch %s (obj %d/%d entries, station %d entries)",
		sw.name, sw.objTable.Len(), sw.objTable.Capacity(), sw.stationTable.Len())
}
