// Package p4sim models a P4-programmable switch in the style of the
// Intel Tofino targets the paper proposes routing on (§3.2): a parser
// over GASP headers feeding match-action tables with exact, ternary,
// and longest-prefix matching, subject to an SRAM capacity model that
// reproduces the paper's table-density numbers (~1.8M exact entries
// with 64-bit IDs, ~850K with 128-bit IDs).
package p4sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/gasperr"
	"repro/internal/wire"
)

// MatchKind selects how a key field is compared.
type MatchKind uint8

// Match kinds.
const (
	// MatchExact compares the full field value.
	MatchExact MatchKind = iota
	// MatchTernary compares under a bit mask.
	MatchTernary
	// MatchLPM compares the high PrefixBits bits (object prefixes for
	// the hierarchical overlay schemes of §3.2).
	MatchLPM
)

// String names the match kind.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	}
	return fmt.Sprintf("match(%d)", uint8(k))
}

// Key declares one component of a table's match key.
type Key struct {
	Field wire.Field
	Kind  MatchKind
}

// KeyValue is the value (and mask/prefix, per kind) an entry matches
// against for one key component.
type KeyValue struct {
	Value wire.Value
	// Mask applies to MatchTernary (1-bits are compared).
	Mask wire.Value
	// PrefixBits applies to MatchLPM.
	PrefixBits int
}

// ActionType enumerates data-plane actions.
type ActionType uint8

// Actions.
const (
	// ActDrop discards the frame.
	ActDrop ActionType = iota
	// ActForward emits the frame on Port.
	ActForward
	// ActFlood emits the frame on every port except the ingress.
	ActFlood
	// ActToController punts the frame to the CPU port.
	ActToController
)

// String names the action type.
func (a ActionType) String() string {
	switch a {
	case ActDrop:
		return "drop"
	case ActForward:
		return "forward"
	case ActFlood:
		return "flood"
	case ActToController:
		return "to-controller"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Action is a resolved data-plane action.
type Action struct {
	Type ActionType
	Port int
}

// Entry is one installed table entry.
type Entry struct {
	Match    []KeyValue
	Priority int // higher wins among ternary/LPM entries
	Action   Action

	// Eviction bookkeeping (unused under EvictNone).
	key        string // exact-map key; "" for ternary/LPM entries
	prev, next *Entry // recency ring links
	ref        bool   // CLOCK reference bit
}

// SRAM capacity model. Exact-match tables on Tofino-class hardware
// pack entries into fixed-width SRAM words with per-entry action data
// and pointer/ECC overhead, and hash packing degrades for entries that
// span multiple words. With a 30 MiB table budget this yields
// ~1.81M 64-bit-key entries and ~855K 128-bit-key entries, matching
// §3.2's "∼1.8M exact entries ... ∼850K".
const (
	// SRAMWordBytes is the allocation granule.
	SRAMWordBytes = 16
	// EntryOverheadBytes covers action data, entry pointer, and ECC.
	EntryOverheadBytes = 8
	// DefaultTableMemory is the per-table SRAM budget.
	DefaultTableMemory = 30 << 20
)

// Hash fill factors: single-word entries pack better than multi-word.
const (
	fillSingleWord = 0.92
	fillMultiWord  = 0.87
)

// Errors returned by table operations. ErrTableFull wraps the shared
// gasperr sentinel so upper layers can classify capacity exhaustion.
var (
	ErrTableFull = fmt.Errorf("p4sim: %w", gasperr.ErrTableFull)
	ErrBadEntry  = errors.New("p4sim: entry does not match table key schema")
)

// EvictionPolicy selects what a full table does with a new entry.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNone rejects inserts at capacity (ErrTableFull) — the
	// pre-existing behavior and the zero value.
	EvictNone EvictionPolicy = iota
	// EvictLRU evicts the least-recently-hit entry.
	EvictLRU
	// EvictCLOCK approximates LRU with a reference bit and a sweeping
	// hand — the cheap-to-implement-in-hardware variant.
	EvictCLOCK
)

// String names the eviction policy.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictNone:
		return "none"
	case EvictLRU:
		return "lru"
	case EvictCLOCK:
		return "clock"
	}
	return fmt.Sprintf("evict(%d)", uint8(p))
}

// TableConfig configures a table's resources.
type TableConfig struct {
	// MemoryBytes is the SRAM budget; 0 selects DefaultTableMemory,
	// negative means unlimited.
	MemoryBytes int
	// Eviction selects the at-capacity policy. The zero value
	// (EvictNone) keeps the historical reject-with-ErrTableFull
	// behavior; LRU/CLOCK instead evict a victim to admit the new
	// entry, modeling a switch whose control plane recycles SRAM
	// under object-table pressure (§3.2).
	Eviction EvictionPolicy
	// OnEvict, if set, observes each policy eviction with the victim
	// entry (called after removal). Side state keyed on table entries —
	// e.g. the INC register cache — uses it to stay in sync.
	OnEvict func(*Entry)
}

// Table is a single match-action table.
type Table struct {
	name string
	keys []Key
	cfg  TableConfig

	exactOnly bool
	exact     map[string]*Entry
	scan      []*Entry // ternary/LPM entries, sorted by priority desc

	entryCost int
	capacity  int

	// Recency ring for LRU/CLOCK: a circular doubly-linked list
	// through every installed entry, sentinel at ring. front
	// (ring.next) is most recently used, back (ring.prev) least.
	ring      Entry
	hand      *Entry // CLOCK sweep cursor
	evictions uint64

	// vals is lookupSlow's extracted-key scratch, reused across
	// lookups so the ternary/LPM path (every sharded filter-table
	// probe) stays allocation-free. Lookups are serialized — the
	// simulator is single-threaded — and nothing retains the slice.
	vals []wire.Value
}

// NewTable creates a table with the given key schema.
func NewTable(name string, keys []Key, cfg TableConfig) (*Table, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("p4sim: table %q needs at least one key", name)
	}
	keyBits := 0
	exactOnly := true
	for _, k := range keys {
		w := k.Field.Width()
		if w == 0 {
			return nil, fmt.Errorf("p4sim: table %q: unknown field %v", name, k.Field)
		}
		keyBits += w
		if k.Kind != MatchExact {
			exactOnly = false
			// Ternary/LPM (TCAM-style) entries store value+mask.
			keyBits += w
		}
	}
	t := &Table{
		name:      name,
		keys:      append([]Key(nil), keys...),
		cfg:       cfg,
		exactOnly: exactOnly,
		exact:     make(map[string]*Entry),
	}
	keyBytes := (keyBits + 7) / 8
	raw := keyBytes + EntryOverheadBytes
	words := (raw + SRAMWordBytes - 1) / SRAMWordBytes
	t.entryCost = words * SRAMWordBytes

	mem := cfg.MemoryBytes
	if mem == 0 {
		mem = DefaultTableMemory
	}
	if mem < 0 {
		t.capacity = -1 // unlimited
	} else {
		fill := fillSingleWord
		if words > 1 {
			fill = fillMultiWord
		}
		t.capacity = int(float64(mem) * fill / float64(t.entryCost))
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Keys returns the table's key schema.
func (t *Table) Keys() []Key { return t.keys }

// EntryCost returns the SRAM bytes one entry consumes.
func (t *Table) EntryCost() int { return t.entryCost }

// Capacity returns the maximum entry count (-1 = unlimited).
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.exact) + len(t.scan) }

// Full reports whether another entry would exceed capacity.
func (t *Table) Full() bool { return t.capacity >= 0 && t.Len() >= t.capacity }

// exactKey builds the map key for an all-exact entry.
func (t *Table) exactKey(match []KeyValue) string {
	b := make([]byte, 0, len(match)*16)
	for _, kv := range match {
		var tmp [16]byte
		wire.Value(kv.Value).AsID().PutBytes(tmp[:])
		b = append(b, tmp[:]...)
	}
	return string(b)
}

func (t *Table) validate(e *Entry) error {
	if len(e.Match) != len(t.keys) {
		return fmt.Errorf("%w: %d values for %d keys", ErrBadEntry, len(e.Match), len(t.keys))
	}
	for i, k := range t.keys {
		if k.Kind == MatchLPM {
			if e.Match[i].PrefixBits < 0 || e.Match[i].PrefixBits > k.Field.Width() {
				return fmt.Errorf("%w: prefix %d bits on %d-bit field",
					ErrBadEntry, e.Match[i].PrefixBits, k.Field.Width())
			}
		}
	}
	return nil
}

// --- recency ring (LRU/CLOCK bookkeeping) ---

func (t *Table) evicting() bool { return t.cfg.Eviction != EvictNone }

func (t *Table) ringInit() {
	if t.ring.next == nil {
		t.ring.next = &t.ring
		t.ring.prev = &t.ring
	}
}

func (t *Table) ringPushFront(e *Entry) {
	t.ringInit()
	e.prev = &t.ring
	e.next = t.ring.next
	e.prev.next = e
	e.next.prev = e
}

func (t *Table) ringRemove(e *Entry) {
	if e.prev == nil {
		return
	}
	if t.hand == e {
		t.hand = e.next
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// touch records a hit on e for the eviction policy: LRU moves it to
// the ring front, CLOCK sets its reference bit.
func (t *Table) touch(e *Entry) {
	switch t.cfg.Eviction {
	case EvictLRU:
		t.ringRemove(e)
		t.ringPushFront(e)
	case EvictCLOCK:
		e.ref = true
	}
}

// victim selects the entry to evict: the ring back for LRU, the first
// unreferenced entry under the sweeping hand for CLOCK (clearing
// reference bits as it passes). Returns nil when the table is empty.
func (t *Table) victim() *Entry {
	t.ringInit()
	if t.ring.next == &t.ring {
		return nil
	}
	if t.cfg.Eviction == EvictLRU {
		return t.ring.prev
	}
	h := t.hand
	if h == nil || h == &t.ring {
		h = t.ring.next
	}
	for {
		if h == &t.ring { // skip the sentinel
			h = h.next
			continue
		}
		if !h.ref {
			t.hand = h.next
			return h
		}
		h.ref = false
		h = h.next
	}
}

// evictOne removes the policy's victim from the table; it reports
// whether an entry was evicted.
func (t *Table) evictOne() bool {
	v := t.victim()
	if v == nil {
		return false
	}
	t.ringRemove(v)
	if v.key != "" {
		delete(t.exact, v.key)
	} else {
		for i, e := range t.scan {
			if e == v {
				t.scan = append(t.scan[:i], t.scan[i+1:]...)
				break
			}
		}
	}
	t.evictions++
	if t.cfg.OnEvict != nil {
		t.cfg.OnEvict(v)
	}
	return true
}

// Evictions returns the count of entries evicted by the policy.
func (t *Table) Evictions() uint64 { return t.evictions }

// SetOnEvict installs (or replaces) the eviction observer after
// construction — for side state that attaches to a table built
// elsewhere, like the INC cache coupling to the switch object table.
func (t *Table) SetOnEvict(fn func(*Entry)) { t.cfg.OnEvict = fn }

// Insert installs an entry, replacing an identical-match exact entry.
// At capacity, EvictNone fails with ErrTableFull; LRU/CLOCK evict a
// victim to make room.
func (t *Table) Insert(e Entry) error {
	if err := t.validate(&e); err != nil {
		return err
	}
	if t.exactOnly {
		key := t.exactKey(e.Match)
		if _, exists := t.exact[key]; !exists && t.Full() {
			if !t.evicting() || !t.evictOne() {
				return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.name, t.Len())
			}
		}
		ec := e
		ec.key = key
		if old, exists := t.exact[key]; exists && t.evicting() {
			t.ringRemove(old)
		}
		t.exact[key] = &ec
		if t.evicting() {
			t.ringPushFront(&ec)
		}
		return nil
	}
	if t.Full() {
		if !t.evicting() || !t.evictOne() {
			return fmt.Errorf("%w: %q at %d entries", ErrTableFull, t.name, t.Len())
		}
	}
	ec := e
	t.scan = append(t.scan, &ec)
	sort.SliceStable(t.scan, func(i, j int) bool {
		return t.scan[i].Priority > t.scan[j].Priority
	})
	if t.evicting() {
		t.ringPushFront(&ec)
	}
	return nil
}

// Delete removes an exact entry by match; it reports whether an entry
// was removed. (Ternary/LPM entries are removed by Clear or reinstall.)
func (t *Table) Delete(match []KeyValue) bool {
	if t.exactOnly {
		key := t.exactKey(match)
		if e, ok := t.exact[key]; ok {
			t.ringRemove(e)
			delete(t.exact, key)
			return true
		}
		return false
	}
	for i, e := range t.scan {
		if matchEqual(e.Match, match) {
			t.ringRemove(e)
			t.scan = append(t.scan[:i], t.scan[i+1:]...)
			return true
		}
	}
	return false
}

func matchEqual(a, b []KeyValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.exact = make(map[string]*Entry)
	t.scan = nil
	t.ring.next, t.ring.prev = &t.ring, &t.ring
	t.hand = nil
}

// maxStackKeys bounds the key components a lookup can hold on the
// stack; wider schemas fall back to heap buffers. Every table the
// switch program builds uses a single key component.
const maxStackKeys = 4

// Lookup finds the matching entry for a decoded header, returning its
// action and true on a hit. The hot path (exact tables with a narrow
// key schema, i.e. every forwarding lookup) is allocation-free.
func (t *Table) Lookup(h *wire.Header) (Action, bool) {
	if t.exactOnly && len(t.keys) <= maxStackKeys {
		var kb [maxStackKeys * 16]byte
		b := kb[:0]
		for _, k := range t.keys {
			v, err := h.Extract(k.Field)
			if err != nil {
				return Action{}, false
			}
			var tmp [16]byte
			v.AsID().PutBytes(tmp[:])
			b = append(b, tmp[:]...)
		}
		if e, ok := t.exact[string(b)]; ok {
			if t.evicting() {
				t.touch(e)
			}
			return e.Action, true
		}
		return Action{}, false
	}
	return t.lookupSlow(h)
}

// lookupSlow handles ternary/LPM tables and exact tables with wide
// key schemas.
func (t *Table) lookupSlow(h *wire.Header) (Action, bool) {
	if cap(t.vals) < len(t.keys) {
		t.vals = make([]wire.Value, len(t.keys))
	}
	vals := t.vals[:len(t.keys)]
	for i, k := range t.keys {
		v, err := h.Extract(k.Field)
		if err != nil {
			return Action{}, false
		}
		vals[i] = v
	}
	if t.exactOnly {
		// Wide exact schemas (> maxStackKeys components) land here;
		// 8 components cover every schema the stack declares.
		var kb [8 * 16]byte
		b := kb[:0]
		for _, v := range vals {
			var tmp [16]byte
			v.AsID().PutBytes(tmp[:])
			b = append(b, tmp[:]...)
		}
		if e, ok := t.exact[string(b)]; ok {
			if t.evicting() {
				t.touch(e)
			}
			return e.Action, true
		}
		return Action{}, false
	}
	for _, e := range t.scan {
		if t.entryMatches(e, vals) {
			if t.evicting() {
				t.touch(e)
			}
			return e.Action, true
		}
	}
	return Action{}, false
}

func (t *Table) entryMatches(e *Entry, vals []wire.Value) bool {
	for i, k := range t.keys {
		kv, v := e.Match[i], vals[i]
		switch k.Kind {
		case MatchExact:
			if kv.Value != v {
				return false
			}
		case MatchTernary:
			if (v.Hi&kv.Mask.Hi) != (kv.Value.Hi&kv.Mask.Hi) ||
				(v.Lo&kv.Mask.Lo) != (kv.Value.Lo&kv.Mask.Lo) {
				return false
			}
		case MatchLPM:
			if !prefixMatches(kv.Value, kv.PrefixBits, v, k.Field.Width()) {
				return false
			}
		}
	}
	return true
}

// prefixMatches compares the high bits of v against pv, where the
// field is fieldBits wide and the prefix covers bits high bits.
func prefixMatches(pv wire.Value, bits int, v wire.Value, fieldBits int) bool {
	if bits <= 0 {
		return true
	}
	if fieldBits <= 64 {
		// Value lives in Lo; high bits of the field are the high bits
		// of the fieldBits-wide value.
		shift := uint(fieldBits - bits)
		return (v.Lo >> shift) == (pv.Lo >> shift)
	}
	// 128-bit field.
	if bits <= 64 {
		shift := uint(64 - bits)
		return (v.Hi >> shift) == (pv.Hi >> shift)
	}
	if v.Hi != pv.Hi {
		return false
	}
	shift := uint(128 - bits)
	return (v.Lo >> shift) == (pv.Lo >> shift)
}
