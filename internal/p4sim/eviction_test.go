package p4sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/wire"
)

// tinyExactTable builds an exact-match object table sized to hold
// exactly capacity entries (entryCost for a 128-bit exact key is 32
// bytes; memory = capacity*cost/fill rounded up).
func tinyExactTable(t *testing.T, capacity int, policy EvictionPolicy) *Table {
	t.Helper()
	tbl, err := NewTable("test/obj", []Key{{Field: wire.FieldObject, Kind: MatchExact}},
		TableConfig{MemoryBytes: 1, Eviction: policy})
	if err != nil {
		t.Fatal(err)
	}
	mem := int(float64(capacity*tbl.EntryCost())/fillMultiWord) + tbl.EntryCost()
	tbl, err = NewTable("test/obj", []Key{{Field: wire.FieldObject, Kind: MatchExact}},
		TableConfig{MemoryBytes: mem, Eviction: policy})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Capacity(); got < capacity || got > capacity+1 {
		t.Fatalf("capacity = %d, want ~%d", got, capacity)
	}
	return tbl
}

func objEntry(n uint64, port int) Entry {
	return Entry{
		Match:  []KeyValue{{Value: wire.Value{Lo: n}}},
		Action: Action{Type: ActForward, Port: port},
	}
}

func lookupObj(t *Table, n uint64) (Action, bool) {
	return t.Lookup(&wire.Header{
		Flags:  wire.FlagRouteOnObject,
		Object: wire.Value{Lo: n}.AsID(),
	})
}

func TestEvictNoneStillRejectsAtCapacity(t *testing.T) {
	tbl := tinyExactTable(t, 3, EvictNone)
	cap := tbl.Capacity()
	for i := 0; i < cap; i++ {
		if err := tbl.Insert(objEntry(uint64(i+1), i)); err != nil {
			t.Fatal(err)
		}
	}
	err := tbl.Insert(objEntry(999, 0))
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

// TestLRUEvictionOrdering drives a known access pattern and checks the
// exact victim sequence.
func TestLRUEvictionOrdering(t *testing.T) {
	tbl := tinyExactTable(t, 3, EvictLRU)
	cap := tbl.Capacity()
	// Fill to capacity: 1, 2, ..., cap (1 is now least recent).
	for i := 0; i < cap; i++ {
		if err := tbl.Insert(objEntry(uint64(i+1), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := lookupObj(tbl, 1); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	if err := tbl.Insert(objEntry(100, 9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := lookupObj(tbl, 2); ok {
		t.Fatal("entry 2 should have been the LRU victim")
	}
	if _, ok := lookupObj(tbl, 1); !ok {
		t.Fatal("recently-touched entry 1 was evicted")
	}
	if tbl.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", tbl.Evictions())
	}
	// Insert again: victim must now be the least recently touched
	// survivor. Access order so far (most→least recent): 1, 100, then
	// 4..cap, 3. Touch nothing; next victim is 3.
	if err := tbl.Insert(objEntry(101, 9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := lookupObj(tbl, 3); ok {
		t.Fatal("entry 3 should have been the second LRU victim")
	}
	if tbl.Len() != cap {
		t.Fatalf("Len = %d, want %d (evict keeps table at capacity)", tbl.Len(), cap)
	}
}

// TestCLOCKEvictionSecondChance checks the reference-bit semantics: a
// referenced entry survives the first sweep, an unreferenced one is
// taken.
func TestCLOCKEvictionSecondChance(t *testing.T) {
	tbl := tinyExactTable(t, 3, EvictCLOCK)
	cap := tbl.Capacity()
	for i := 0; i < cap; i++ {
		if err := tbl.Insert(objEntry(uint64(i+1), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reference every entry except 2.
	for i := 0; i < cap; i++ {
		if i+1 == 2 {
			continue
		}
		if _, ok := lookupObj(tbl, uint64(i+1)); !ok {
			t.Fatalf("entry %d missing", i+1)
		}
	}
	if err := tbl.Insert(objEntry(100, 9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := lookupObj(tbl, 2); ok {
		t.Fatal("unreferenced entry 2 should have been the CLOCK victim")
	}
	for i := 0; i < cap; i++ {
		if i+1 == 2 {
			continue
		}
		if _, ok := lookupObj(tbl, uint64(i+1)); !ok {
			t.Fatalf("referenced entry %d was evicted on the first sweep", i+1)
		}
	}
	// All reference bits were cleared by the sweep and then re-set by
	// the lookups above except for the new entry 100: it is the next
	// victim.
	if err := tbl.Insert(objEntry(101, 9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := lookupObj(tbl, 100); ok {
		t.Fatal("entry 100 (unreferenced since insert) should have been evicted")
	}
}

// TestEvictionScanTable checks LRU over a ternary scan table: eviction
// must splice the victim out of the priority-sorted slice.
func TestEvictionScanTable(t *testing.T) {
	tbl, err := NewTable("test/tern", []Key{{Field: wire.FieldObject, Kind: MatchTernary}},
		TableConfig{MemoryBytes: 200, Eviction: EvictLRU})
	if err != nil {
		t.Fatal(err)
	}
	cap := tbl.Capacity()
	if cap < 2 {
		t.Fatalf("capacity = %d, want >= 2", cap)
	}
	full := wire.Value{Hi: ^uint64(0), Lo: ^uint64(0)}
	for i := 0; i < cap; i++ {
		err := tbl.Insert(Entry{
			Match:    []KeyValue{{Value: wire.Value{Lo: uint64(i + 1)}, Mask: full}},
			Priority: i,
			Action:   Action{Type: ActForward, Port: i},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Touch everything except entry 1.
	for i := 1; i < cap; i++ {
		if _, ok := lookupObj(tbl, uint64(i+1)); !ok {
			t.Fatalf("entry %d missing", i+1)
		}
	}
	if err := tbl.Insert(Entry{
		Match:    []KeyValue{{Value: wire.Value{Lo: 100}, Mask: full}},
		Priority: 100,
		Action:   Action{Type: ActForward, Port: 9},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := lookupObj(tbl, 1); ok {
		t.Fatal("entry 1 should have been evicted from the scan table")
	}
	if got, ok := lookupObj(tbl, 100); !ok || got.Port != 9 {
		t.Fatalf("new entry lookup = %v %v, want hit on port 9", got, ok)
	}
	if tbl.Len() != cap {
		t.Fatalf("Len = %d, want %d", tbl.Len(), cap)
	}
}

// TestEvictionDeleteInteraction: deleting an entry must unlink it from
// the recency ring so a later eviction never picks a dead entry.
func TestEvictionDeleteInteraction(t *testing.T) {
	for _, policy := range []EvictionPolicy{EvictLRU, EvictCLOCK} {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			tbl := tinyExactTable(t, 3, policy)
			cap := tbl.Capacity()
			for i := 0; i < cap; i++ {
				if err := tbl.Insert(objEntry(uint64(i+1), i)); err != nil {
					t.Fatal(err)
				}
			}
			if !tbl.Delete([]KeyValue{{Value: wire.Value{Lo: 1}}}) {
				t.Fatal("Delete(1) failed")
			}
			// Two inserts: the first fits in the freed slot, the second
			// must evict a live entry without panicking.
			if err := tbl.Insert(objEntry(100, 0)); err != nil {
				t.Fatal(err)
			}
			if err := tbl.Insert(objEntry(101, 0)); err != nil {
				t.Fatal(err)
			}
			if tbl.Len() != cap {
				t.Fatalf("Len = %d, want %d", tbl.Len(), cap)
			}
		})
	}
}
