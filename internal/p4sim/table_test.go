package p4sim

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/oid"
	"repro/internal/wire"
)

var gen = oid.NewSeededGenerator(77)

func exactObjTable(t *testing.T, mem int) *Table {
	t.Helper()
	tb, err := NewTable("t", []Key{{Field: wire.FieldObject, Kind: MatchExact}},
		TableConfig{MemoryBytes: mem})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", nil, TableConfig{}); err == nil {
		t.Fatal("accepted empty key schema")
	}
	if _, err := NewTable("t", []Key{{Field: wire.Field(99)}}, TableConfig{}); err == nil {
		t.Fatal("accepted unknown field")
	}
}

func TestExactInsertLookup(t *testing.T) {
	tb := exactObjTable(t, -1)
	id := gen.New()
	err := tb.Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOfID(id)}},
		Action: Action{Type: ActForward, Port: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	act, ok := tb.Lookup(&wire.Header{Object: id})
	if !ok || act.Type != ActForward || act.Port != 3 {
		t.Fatalf("Lookup = %+v, %v", act, ok)
	}
	if _, ok := tb.Lookup(&wire.Header{Object: gen.New()}); ok {
		t.Fatal("lookup hit for uninstalled object")
	}
	// Replacement of same key does not grow the table.
	tb.Insert(Entry{
		Match:  []KeyValue{{Value: wire.ValueOfID(id)}},
		Action: Action{Type: ActForward, Port: 7},
	})
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after replace", tb.Len())
	}
	act, _ = tb.Lookup(&wire.Header{Object: id})
	if act.Port != 7 {
		t.Fatalf("replaced entry port = %d", act.Port)
	}
}

func TestDelete(t *testing.T) {
	tb := exactObjTable(t, -1)
	id := gen.New()
	m := []KeyValue{{Value: wire.ValueOfID(id)}}
	tb.Insert(Entry{Match: m, Action: Action{Type: ActDrop}})
	if !tb.Delete(m) {
		t.Fatal("Delete returned false")
	}
	if tb.Delete(m) {
		t.Fatal("double Delete returned true")
	}
	if _, ok := tb.Lookup(&wire.Header{Object: id}); ok {
		t.Fatal("deleted entry still matches")
	}
}

func TestInsertArityValidation(t *testing.T) {
	tb := exactObjTable(t, -1)
	if err := tb.Insert(Entry{Match: nil}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("arity: %v", err)
	}
}

func TestCapacityNumbers(t *testing.T) {
	// §3.2: ~1.8M exact entries with 64-bit keys, ~850K with 128-bit.
	t64, err := NewTable("t64", []Key{{Field: wire.FieldSeq, Kind: MatchExact}}, TableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t128, err := NewTable("t128", []Key{{Field: wire.FieldObject, Kind: MatchExact}}, TableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c64, c128 := t64.Capacity(), t128.Capacity()
	if c64 < 1_700_000 || c64 > 1_900_000 {
		t.Errorf("64-bit capacity = %d, want ~1.8M", c64)
	}
	if c128 < 800_000 || c128 > 900_000 {
		t.Errorf("128-bit capacity = %d, want ~850K", c128)
	}
	if c64 <= c128 {
		t.Error("64-bit keys should pack denser than 128-bit")
	}
}

func TestTableFull(t *testing.T) {
	// Tiny budget: 16B/entry at 0.92 fill over 64B = 3 entries.
	tb, err := NewTable("tiny", []Key{{Field: wire.FieldSeq, Kind: MatchExact}},
		TableConfig{MemoryBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Capacity() != 3 {
		t.Fatalf("Capacity = %d", tb.Capacity())
	}
	for i := 0; i < 3; i++ {
		err := tb.Insert(Entry{Match: []KeyValue{{Value: wire.ValueOf(uint64(i))}}})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if !tb.Full() {
		t.Fatal("Full = false at capacity")
	}
	err = tb.Insert(Entry{Match: []KeyValue{{Value: wire.ValueOf(99)}}})
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("over-capacity insert: %v", err)
	}
	// Replacing an existing key is still allowed at capacity.
	if err := tb.Insert(Entry{Match: []KeyValue{{Value: wire.ValueOf(1)}}}); err != nil {
		t.Fatalf("replace at capacity: %v", err)
	}
}

func TestTernaryMatch(t *testing.T) {
	tb, err := NewTable("tern", []Key{{Field: wire.FieldFlags, Kind: MatchTernary}},
		TableConfig{MemoryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Match any frame with FlagReliable set.
	err = tb.Insert(Entry{
		Match: []KeyValue{{
			Value: wire.ValueOf(uint64(wire.FlagReliable)),
			Mask:  wire.ValueOf(uint64(wire.FlagReliable)),
		}},
		Priority: 1,
		Action:   Action{Type: ActForward, Port: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Lookup(&wire.Header{Flags: wire.FlagReliable | wire.FlagResponse}); !ok {
		t.Fatal("ternary miss on flag superset")
	}
	if _, ok := tb.Lookup(&wire.Header{Flags: wire.FlagResponse}); ok {
		t.Fatal("ternary hit without required flag")
	}
}

func TestTernaryPriority(t *testing.T) {
	tb, _ := NewTable("tern", []Key{{Field: wire.FieldSrc, Kind: MatchTernary}},
		TableConfig{MemoryBytes: -1})
	// Low priority: match-all → drop.
	tb.Insert(Entry{
		Match:    []KeyValue{{Value: wire.ValueOf(0), Mask: wire.ValueOf(0)}},
		Priority: 0,
		Action:   Action{Type: ActDrop},
	})
	// High priority: src 5 → forward.
	tb.Insert(Entry{
		Match:    []KeyValue{{Value: wire.ValueOf(5), Mask: wire.ValueOf(^uint64(0))}},
		Priority: 10,
		Action:   Action{Type: ActForward, Port: 2},
	})
	act, ok := tb.Lookup(&wire.Header{Src: 5})
	if !ok || act.Type != ActForward {
		t.Fatalf("priority: %+v %v", act, ok)
	}
	act, ok = tb.Lookup(&wire.Header{Src: 6})
	if !ok || act.Type != ActDrop {
		t.Fatalf("fallback: %+v %v", act, ok)
	}
}

func TestLPMOnObject(t *testing.T) {
	tb, err := NewTable("lpm", []Key{{Field: wire.FieldObject, Kind: MatchLPM}},
		TableConfig{MemoryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := oid.ID{Hi: 0xAA00_0000_0000_0000}
	// /8 prefix, low priority; /16 prefix, high priority.
	tb.Insert(Entry{
		Match:    []KeyValue{{Value: wire.ValueOfID(base), PrefixBits: 8}},
		Priority: 8,
		Action:   Action{Type: ActForward, Port: 1},
	})
	tb.Insert(Entry{
		Match:    []KeyValue{{Value: wire.ValueOfID(oid.ID{Hi: 0xAABB_0000_0000_0000}), PrefixBits: 16}},
		Priority: 16,
		Action:   Action{Type: ActForward, Port: 2},
	})
	act, ok := tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0xAABB_CCDD_0000_0000}})
	if !ok || act.Port != 2 {
		t.Fatalf("longest prefix: %+v %v", act, ok)
	}
	act, ok = tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0xAA11_0000_0000_0000}})
	if !ok || act.Port != 1 {
		t.Fatalf("short prefix: %+v %v", act, ok)
	}
	if _, ok := tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0xBB00_0000_0000_0000}}); ok {
		t.Fatal("LPM hit outside any prefix")
	}
}

func TestLPMPrefixBeyond64(t *testing.T) {
	tb, _ := NewTable("lpm", []Key{{Field: wire.FieldObject, Kind: MatchLPM}},
		TableConfig{MemoryBytes: -1})
	pfx := oid.ID{Hi: 0x1234, Lo: 0xFF00_0000_0000_0000}
	tb.Insert(Entry{
		Match:    []KeyValue{{Value: wire.ValueOfID(pfx), PrefixBits: 72}},
		Priority: 72,
		Action:   Action{Type: ActForward, Port: 4},
	})
	if _, ok := tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0x1234, Lo: 0xFF12_3456_789A_BCDE}}); !ok {
		t.Fatal("miss on /72 prefix match")
	}
	if _, ok := tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0x1234, Lo: 0xFE00_0000_0000_0000}}); ok {
		t.Fatal("hit on wrong Lo high bits")
	}
	if _, ok := tb.Lookup(&wire.Header{Object: oid.ID{Hi: 0x9999, Lo: 0xFF00_0000_0000_0000}}); ok {
		t.Fatal("hit on wrong Hi")
	}
}

func TestLPMValidation(t *testing.T) {
	tb, _ := NewTable("lpm", []Key{{Field: wire.FieldObject, Kind: MatchLPM}},
		TableConfig{MemoryBytes: -1})
	err := tb.Insert(Entry{Match: []KeyValue{{PrefixBits: 200}}})
	if !errors.Is(err, ErrBadEntry) {
		t.Fatalf("bad prefix bits: %v", err)
	}
}

func TestScanDeleteAndClear(t *testing.T) {
	tb, _ := NewTable("tern", []Key{{Field: wire.FieldSrc, Kind: MatchTernary}},
		TableConfig{MemoryBytes: -1})
	m := []KeyValue{{Value: wire.ValueOf(1), Mask: wire.ValueOf(^uint64(0))}}
	tb.Insert(Entry{Match: m, Action: Action{Type: ActDrop}})
	if !tb.Delete(m) {
		t.Fatal("scan delete failed")
	}
	tb.Insert(Entry{Match: m})
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestEntryCostWiderForTernary(t *testing.T) {
	ex, _ := NewTable("e", []Key{{Field: wire.FieldObject, Kind: MatchExact}}, TableConfig{})
	tern, _ := NewTable("t", []Key{{Field: wire.FieldObject, Kind: MatchTernary}}, TableConfig{})
	if tern.EntryCost() <= ex.EntryCost() {
		t.Fatalf("ternary cost %d <= exact cost %d", tern.EntryCost(), ex.EntryCost())
	}
}

func TestPropertyExactLookupFindsInserted(t *testing.T) {
	f := func(hi, lo uint64, port uint8) bool {
		if hi == 0 && lo == 0 {
			return true
		}
		tb := &Table{}
		var err error
		tb, err = NewTable("p", []Key{{Field: wire.FieldObject, Kind: MatchExact}},
			TableConfig{MemoryBytes: -1})
		if err != nil {
			return false
		}
		id := oid.ID{Hi: hi, Lo: lo}
		if err := tb.Insert(Entry{
			Match:  []KeyValue{{Value: wire.ValueOfID(id)}},
			Action: Action{Type: ActForward, Port: int(port)},
		}); err != nil {
			return false
		}
		act, ok := tb.Lookup(&wire.Header{Object: id})
		return ok && act.Port == int(port)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchKindActionStrings(t *testing.T) {
	if MatchExact.String() != "exact" || MatchLPM.String() != "lpm" ||
		MatchTernary.String() != "ternary" || MatchKind(9).String() != "match(9)" {
		t.Fatal("match kind names")
	}
	if ActFlood.String() != "flood" || ActToController.String() != "to-controller" ||
		ActDrop.String() != "drop" || ActForward.String() != "forward" ||
		ActionType(9).String() != "action(9)" {
		t.Fatal("action names")
	}
}

func BenchmarkExactLookup(b *testing.B) {
	tb, _ := NewTable("b", []Key{{Field: wire.FieldObject, Kind: MatchExact}},
		TableConfig{MemoryBytes: -1})
	ids := make([]oid.ID, 1000)
	for i := range ids {
		ids[i] = gen.New()
		tb.Insert(Entry{
			Match:  []KeyValue{{Value: wire.ValueOfID(ids[i])}},
			Action: Action{Type: ActForward, Port: i % 16},
		})
	}
	h := &wire.Header{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Object = ids[i%len(ids)]
		if _, ok := tb.Lookup(h); !ok {
			b.Fatal("miss")
		}
	}
}
