package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/backend"
)

// chromeEvent is one Chrome trace-event ("X" complete events), the
// format chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // µs
	Dur  float64           `json:"dur"` // µs
	PID  uint64            `json:"pid"` // trace ID
	TID  uint64            `json:"tid"` // span ID
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome emits spans as a Chrome trace-event JSON array. Each
// trace becomes one "process" (pid = trace ID).
func WriteChrome(w io.Writer, spans []*Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   s.Start.Sub(0).Microseconds(),
			Dur:  s.Duration().Microseconds(),
			PID:  s.Trace,
			TID:  s.ID,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		if s.Parent != 0 {
			if ev.Args == nil {
				ev.Args = make(map[string]string, 1)
			}
			ev.Args["parent"] = fmt.Sprintf("%d", s.Parent)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ByTrace filters spans belonging to one trace, in creation order.
func ByTrace(spans []*Span, traceID uint64) []*Span {
	var out []*Span
	for _, s := range spans {
		if s.Trace == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Root returns a trace's root span (the span whose ID equals the
// trace ID), or nil.
func Root(spans []*Span, traceID uint64) *Span {
	for _, s := range spans {
		if s.Trace == traceID && s.ID == traceID {
			return s
		}
	}
	return nil
}

// TraceIDs lists the distinct trace IDs present, in first-seen order.
func TraceIDs(spans []*Span) []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for _, s := range spans {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			out = append(out, s.Trace)
		}
	}
	return out
}

// depthOf computes a span's tree depth via its parent chain. Spans
// whose parent is missing (e.g. ack-carried context for an
// unrecorded span) hang at depth 1.
func depthOf(s *Span, byID map[uint64]*Span) int {
	depth := 0
	for cur := s; cur != nil && cur.Parent != 0 && depth < 64; depth++ {
		cur = byID[cur.Parent]
	}
	return depth
}

// WriteTree prints one trace's span tree, preorder with indentation,
// one line per span: start, duration, kind, name, attrs.
func WriteTree(w io.Writer, spans []*Span, traceID uint64) {
	ts := ByTrace(spans, traceID)
	byID := make(map[uint64]*Span, len(ts))
	children := make(map[uint64][]*Span)
	for _, s := range ts {
		byID[s.ID] = s
	}
	var roots []*Span
	for _, s := range ts {
		if s.Parent != 0 && byID[s.Parent] != nil {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(ss []*Span) {
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].Start != ss[j].Start {
				return ss[i].Start < ss[j].Start
			}
			return ss[i].ID < ss[j].ID
		})
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		var attrs string
		if len(s.Attrs) > 0 {
			parts := make([]string, len(s.Attrs))
			for i, a := range s.Attrs {
				parts[i] = a.Key + "=" + a.Val
			}
			attrs = "  [" + strings.Join(parts, " ") + "]"
		}
		fmt.Fprintf(w, "%10.2f  %9.2f  %s%-8s %s%s\n",
			s.Start.Sub(0).Microseconds(), s.Duration().Microseconds(),
			strings.Repeat("  ", depth), s.Kind.String(), s.Name, attrs)
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	order(roots)
	fmt.Fprintf(w, "%10s  %9s  span\n", "start µs", "dur µs")
	for _, s := range roots {
		walk(s, 0)
	}
}

// BreakdownRow attributes part of a root span's wall time to one
// span kind.
type BreakdownRow struct {
	Label string
	Dur   backend.Duration
	Pct   float64
	Count int // spans of this kind inside the root interval
}

// Breakdown attributes every instant of the root span's interval to
// the deepest span active at that instant (critical-path style):
// link/switch/dispatch spans shadow the transport send that contains
// them, which shadows the resolve/op above it. Instants covered by no
// descendant span are attributed to "host" — endpoint-side time the
// instrumentation doesn't subdivide (timeout waits, handler logic).
func Breakdown(spans []*Span, root *Span) []BreakdownRow {
	if root == nil || root.open {
		return nil
	}
	ts := ByTrace(spans, root.Trace)
	byID := make(map[uint64]*Span, len(ts))
	for _, s := range ts {
		byID[s.ID] = s
	}

	type active struct {
		s     *Span
		depth int
	}
	var within []active
	counts := make([]int, numKinds)
	for _, s := range ts {
		if s == root || s.open {
			continue
		}
		if s.Finish <= root.Start || s.Start >= root.Finish {
			continue
		}
		counts[s.Kind]++
		within = append(within, active{s, depthOf(s, byID)})
	}

	// Boundary sweep over the elementary intervals inside the root.
	cuts := []backend.Time{root.Start, root.Finish}
	for _, a := range within {
		if a.s.Start > root.Start && a.s.Start < root.Finish {
			cuts = append(cuts, a.s.Start)
		}
		if a.s.Finish > root.Start && a.s.Finish < root.Finish {
			cuts = append(cuts, a.s.Finish)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	attributed := make([]backend.Duration, numKinds)
	var host backend.Duration
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi <= lo {
			continue
		}
		best := active{}
		for _, a := range within {
			if a.s.Start <= lo && a.s.Finish >= hi {
				if best.s == nil || a.depth > best.depth ||
					(a.depth == best.depth && a.s.ID > best.s.ID) {
					best = a
				}
			}
		}
		if best.s == nil {
			host += hi.Sub(lo)
		} else {
			attributed[best.s.Kind] += hi.Sub(lo)
		}
	}

	total := root.Duration()
	pct := func(d backend.Duration) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	var rows []BreakdownRow
	for k := Kind(0); k < numKinds; k++ {
		if attributed[k] == 0 && counts[k] == 0 {
			continue
		}
		rows = append(rows, BreakdownRow{
			Label: k.String(), Dur: attributed[k],
			Pct: pct(attributed[k]), Count: counts[k],
		})
	}
	if host > 0 {
		rows = append(rows, BreakdownRow{Label: "host", Dur: host, Pct: pct(host)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Dur > rows[j].Dur })
	return rows
}

// WriteBreakdown prints a Breakdown as an aligned text table.
func WriteBreakdown(w io.Writer, spans []*Span, root *Span) {
	rows := Breakdown(spans, root)
	fmt.Fprintf(w, "%-10s %10s %7s %7s\n", "where", "µs", "%", "spans")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.2f %6.1f%% %7d\n",
			r.Label, r.Dur.Microseconds(), r.Pct, r.Count)
	}
	fmt.Fprintf(w, "%-10s %10.2f %6.1f%%\n", "total",
		root.Duration().Microseconds(), 100.0)
}
