// Package trace is the causal, cross-hop tracing substrate: spans
// recorded against the backend clock, with trace context
// carried in the GASP wire header (wire.FlagTraced + the 24-byte
// header extension) so a single operation's span tree covers
// transport sends, every switch hop, link traversal, retransmissions,
// and handler dispatch on the far side.
//
// Determinism contract: the recorder never schedules simulation
// events and never consumes simulation randomness. Sampling is a
// per-operation counter, so with sampling disabled no frame carries
// FlagTraced and the simulation's event stream is bit-identical to an
// untraced run; unsampled operations leave no fingerprint even with
// the recorder live. A *sampled* operation's frames do carry the
// 24-byte header extension, so — as with any in-band tracing system —
// the latency it reports includes the cost of carrying the context.
package trace

import (
	"repro/internal/backend"
	"repro/internal/wire"
)

// Config controls a Recorder.
type Config struct {
	// SampleEvery traces every Nth root operation: 1 traces all,
	// 0 disables tracing entirely. Sampling is counter-based (no
	// randomness) so runs are reproducible.
	SampleEvery int
	// MaxSpans bounds retained spans (0 means DefaultMaxSpans).
	// Once full, new spans are counted but not recorded.
	MaxSpans int
}

// DefaultMaxSpans bounds span retention when Config.MaxSpans is 0.
const DefaultMaxSpans = 1 << 20

// Kind categorizes a span for the critical-path breakdown.
type Kind uint8

// Span kinds, one per instrumented layer.
const (
	KindOp       Kind = iota // operation root (acquire/read/invoke/...)
	KindResolve              // discovery resolution
	KindRPC                  // rpc call envelope
	KindSend                 // transport send (reliable: until acked)
	KindRetrans              // retransmission marker
	KindLink                 // link traversal (queue + tx + propagation)
	KindSwitch               // switch pipeline (table lookups)
	KindDispatch             // receiver-side handler dispatch
	KindInstall              // controller rule-install delay
	KindOther

	numKinds
)

var kindNames = [...]string{
	"op", "resolve", "rpc", "send", "rtx", "link", "switch",
	"dispatch", "install", "other",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// Attr is a key/value annotation on a span.
type Attr struct {
	Key, Val string
}

// Span is one timed interval on the virtual clock, linked into a
// trace's tree by parent span ID. All span methods are nil-safe so
// instrumentation sites can call through unconditionally; with
// tracing disabled or the operation unsampled every span pointer is
// nil and the call is a no-op.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Kind   Kind
	Name   string
	Start  backend.Time
	Finish backend.Time
	Attrs  []Attr

	rec  *Recorder
	open bool
}

// Ctx is a span's wire-portable trace context: what gets stamped into
// a header so downstream hops can parent their spans causally. The
// zero Ctx means "untraced".
type Ctx struct {
	Trace uint64
	Span  uint64
}

// Traced reports whether the context carries a sampled trace.
func (c Ctx) Traced() bool { return c.Trace != 0 }

// FromHeader extracts the context a received frame carries (the zero
// Ctx for untraced frames), so responder-side sends can chain their
// frames causally under the requester's span.
func FromHeader(h *wire.Header) Ctx {
	if h.Flags&wire.FlagTraced == 0 {
		return Ctx{}
	}
	return Ctx{Trace: h.TraceID, Span: h.SpanID}
}

// Inject stamps the context into a header and sets FlagTraced. A zero
// context is a no-op, so callers can inject unconditionally.
func (c Ctx) Inject(h *wire.Header) {
	if !c.Traced() {
		return
	}
	h.TraceID = c.Trace
	h.SpanID = c.Span
	h.Flags |= wire.FlagTraced
}

// Recorder collects spans for one cluster. A nil *Recorder is valid
// and records nothing.
type Recorder struct {
	clock   backend.Clock
	cfg     Config
	nextID  uint64
	ops     uint64 // root-operation counter for sampling
	spans   []*Span
	dropped uint64
}

// NewRecorder builds a recorder reading time from sim. Returns nil
// when cfg disables sampling, so wiring code can treat "tracing off"
// and "no recorder" identically.
func NewRecorder(clock backend.Clock, cfg Config) *Recorder {
	if cfg.SampleEvery <= 0 {
		return nil
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Recorder{clock: clock, cfg: cfg}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// now reads the virtual clock.
func (r *Recorder) now() backend.Time { return r.clock.Now() }

// alloc registers a span, honoring the retention bound.
func (r *Recorder) alloc(s *Span) *Span {
	if len(r.spans) >= r.cfg.MaxSpans {
		r.dropped++
		return nil
	}
	r.nextID++
	s.ID = r.nextID
	s.rec = r
	s.open = true
	r.spans = append(r.spans, s)
	return s
}

// StartRoot begins a new trace if this operation is sampled, and
// returns its root span (nil when unsampled or r is nil). The root
// span's ID doubles as the trace ID.
func (r *Recorder) StartRoot(name string) *Span {
	if r == nil {
		return nil
	}
	r.ops++
	if (r.ops-1)%uint64(r.cfg.SampleEvery) != 0 {
		return nil
	}
	s := r.alloc(&Span{Kind: KindOp, Name: name, Start: r.now()})
	if s == nil {
		return nil
	}
	s.Trace = s.ID
	return s
}

// StartSpan begins a child span under ctx at the current virtual
// time. Returns nil (a no-op span) for an untraced ctx or nil r.
func (r *Recorder) StartSpan(ctx Ctx, kind Kind, name string) *Span {
	if r == nil || !ctx.Traced() {
		return nil
	}
	return r.alloc(&Span{
		Trace: ctx.Trace, Parent: ctx.Span,
		Kind: kind, Name: name, Start: r.now(),
	})
}

// StartSpanAt is StartSpan with an explicit start time, for hops
// whose interval is known analytically (link occupancy, pipeline
// delay) rather than bracketed by callbacks.
func (r *Recorder) StartSpanAt(ctx Ctx, kind Kind, name string, start backend.Time) *Span {
	s := r.StartSpan(ctx, kind, name)
	if s != nil {
		s.Start = start
	}
	return s
}

// Mark records an instantaneous (zero-duration) span — retransmit
// markers, drops.
func (r *Recorder) Mark(ctx Ctx, kind Kind, name string) *Span {
	s := r.StartSpan(ctx, kind, name)
	s.End()
	return s
}

// Spans returns all recorded spans in creation order. The recorder
// retains ownership; callers must not mutate.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Dropped reports spans lost to the MaxSpans bound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset discards recorded spans (the sampling counter keeps running
// so operation parity is preserved across resets).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = nil
	r.dropped = 0
}

// LinkHook returns a frame-span hook recording a link-traversal
// span for every traced frame, decomposed into queueing, serialization
// and propagation time via attributes. Install with
// Network.SetFrameSpanHook.
func (r *Recorder) LinkHook() func(from, to string, fr backend.Frame,
	sent, arrival backend.Time, queued, tx backend.Duration, dropped bool) {
	if r == nil {
		return nil
	}
	return func(from, to string, fr backend.Frame, sent, arrival backend.Time, queued, tx backend.Duration, dropped bool) {
		traceID, spanID, _, ok := wire.TraceContext(fr)
		if !ok {
			return
		}
		s := r.StartSpanAt(Ctx{Trace: traceID, Span: spanID}, KindLink,
			"link:"+from+"->"+to, sent)
		if s == nil {
			return
		}
		s.SetAttr("queue", queued.String())
		s.SetAttr("tx", tx.String())
		if dropped {
			s.SetAttr("dropped", "true")
			s.EndAt(sent.Add(queued + tx))
			return
		}
		s.SetAttr("prop", (arrival.Sub(sent) - queued - tx).String())
		s.EndAt(arrival)
	}
}

// Ctx returns the span's wire-portable context (zero for nil spans).
func (s *Span) Ctx() Ctx {
	if s == nil {
		return Ctx{}
	}
	return Ctx{Trace: s.Trace, Span: s.ID}
}

// End closes the span at the current virtual time. Nil-safe and
// idempotent (the first End wins).
func (s *Span) End() {
	if s == nil || !s.open {
		return
	}
	s.EndAt(s.rec.now())
}

// EndAt closes the span at an explicit time.
func (s *Span) EndAt(t backend.Time) {
	if s == nil || !s.open {
		return
	}
	s.open = false
	s.Finish = t
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Duration returns Finish - Start (zero for nil or open spans).
func (s *Span) Duration() backend.Duration {
	if s == nil || s.open {
		return 0
	}
	return s.Finish.Sub(s.Start)
}
