package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/wire"
)

func advance(sim *netsim.Sim, d netsim.Duration) {
	sim.Schedule(d, func() {})
	sim.Run()
}

func TestSamplingCounter(t *testing.T) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 3})
	var sampled []bool
	for i := 0; i < 9; i++ {
		sampled = append(sampled, r.StartRoot("op") != nil)
	}
	want := []bool{true, false, false, true, false, false, true, false, false}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("op %d sampled=%v, want %v", i, sampled[i], want[i])
		}
	}
}

func TestDisabledRecorderIsNil(t *testing.T) {
	sim := netsim.NewSim(1)
	if r := NewRecorder(sim, Config{}); r != nil {
		t.Fatal("zero config must yield a nil recorder")
	}
	if r := NewRecorder(sim, Config{SampleEvery: -1}); r != nil {
		t.Fatal("negative SampleEvery must yield a nil recorder")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if sp := r.StartRoot("op"); sp != nil {
		t.Fatal("nil recorder produced a span")
	}
	if sp := r.StartSpan(Ctx{Trace: 1, Span: 1}, KindSend, "s"); sp != nil {
		t.Fatal("nil recorder produced a child span")
	}
	r.Mark(Ctx{Trace: 1, Span: 1}, KindRetrans, "rtx")
	r.Reset()
	if r.Spans() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder holds state")
	}
	if r.LinkHook() != nil {
		t.Fatal("nil recorder returned a link hook")
	}

	var sp *Span
	sp.End()
	sp.EndAt(5)
	sp.SetAttr("k", "v")
	if sp.Duration() != 0 {
		t.Fatal("nil span has duration")
	}
	if sp.Ctx().Traced() {
		t.Fatal("nil span context is traced")
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 1})
	root := r.StartRoot("op:test")
	if root == nil || root.Trace != root.ID {
		t.Fatalf("root = %+v; trace ID must equal span ID", root)
	}
	advance(sim, 10*netsim.Microsecond)
	child := r.StartSpan(root.Ctx(), KindSend, "send:mem")
	if child.Parent != root.ID || child.Trace != root.Trace {
		t.Fatalf("child = %+v not parented under root %d", child, root.ID)
	}
	advance(sim, 5*netsim.Microsecond)
	child.End()
	advance(sim, 5*netsim.Microsecond)
	root.End()
	root.End() // idempotent: first End wins

	if got := root.Duration(); got != 20*netsim.Microsecond {
		t.Fatalf("root duration = %v, want 20µs", got)
	}
	if got := child.Duration(); got != 5*netsim.Microsecond {
		t.Fatalf("child duration = %v, want 5µs", got)
	}

	var h wire.Header
	child.Ctx().Inject(&h)
	if h.Flags&wire.FlagTraced == 0 || h.TraceID != root.Trace || h.SpanID != child.ID {
		t.Fatalf("injected header = %+v", h)
	}
	// A zero Ctx must leave the header untouched.
	var clean wire.Header
	(Ctx{}).Inject(&clean)
	if clean.Flags != 0 || clean.TraceID != 0 {
		t.Fatalf("zero ctx dirtied header: %+v", clean)
	}
}

func TestResetKeepsSamplingParity(t *testing.T) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 2})
	if r.StartRoot("a") == nil {
		t.Fatal("op 0 should sample")
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset left spans behind")
	}
	if r.StartRoot("b") != nil {
		t.Fatal("op 1 should not sample: Reset must not rewind the counter")
	}
	if r.StartRoot("c") == nil {
		t.Fatal("op 2 should sample")
	}
}

func TestMaxSpansDrops(t *testing.T) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 1, MaxSpans: 2})
	root := r.StartRoot("op")
	r.StartSpan(root.Ctx(), KindSend, "s1")
	if sp := r.StartSpan(root.Ctx(), KindSend, "s2"); sp != nil {
		t.Fatal("span over MaxSpans was recorded")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
}

// synthetic builds a closed span without a recorder (fields are
// exported precisely so tests and importers can construct fixtures).
func synthetic(trace, id, parent uint64, kind Kind, name string, start, finish netsim.Time) *Span {
	return &Span{Trace: trace, ID: id, Parent: parent, Kind: kind,
		Name: name, Start: start, Finish: finish}
}

func TestBreakdownDeepestWins(t *testing.T) {
	us := netsim.Time(netsim.Microsecond)
	root := synthetic(1, 1, 0, KindOp, "op", 0, 100*us)
	spans := []*Span{
		root,
		synthetic(1, 2, 1, KindSend, "send", 10*us, 90*us),
		synthetic(1, 3, 2, KindLink, "link", 20*us, 60*us),
	}
	rows := Breakdown(spans, root)
	got := map[string]netsim.Duration{}
	for _, r := range rows {
		got[r.Label] = r.Dur
	}
	// link (depth 2) shadows send inside [20,60); send covers the rest
	// of its interval; [0,10) and [90,100) fall to host.
	if got["link"] != 40*netsim.Microsecond {
		t.Fatalf("link = %v, want 40µs", got["link"])
	}
	if got["send"] != 40*netsim.Microsecond {
		t.Fatalf("send = %v, want 40µs", got["send"])
	}
	if got["host"] != 20*netsim.Microsecond {
		t.Fatalf("host = %v, want 20µs", got["host"])
	}
	var sum netsim.Duration
	for _, r := range rows {
		sum += r.Dur
	}
	if sum != root.Duration() {
		t.Fatalf("breakdown sums to %v, root is %v", sum, root.Duration())
	}
}

func TestBreakdownOpenRootNil(t *testing.T) {
	open := &Span{Trace: 1, ID: 1, open: true}
	if rows := Breakdown([]*Span{open}, open); rows != nil {
		t.Fatal("breakdown of an open root must be nil")
	}
	if rows := Breakdown(nil, nil); rows != nil {
		t.Fatal("breakdown of nil root must be nil")
	}
}

func TestWriteTreeRendersHierarchy(t *testing.T) {
	us := netsim.Time(netsim.Microsecond)
	spans := []*Span{
		synthetic(1, 1, 0, KindOp, "op:read", 0, 30*us),
		synthetic(1, 2, 1, KindSend, "send:mem", 5*us, 25*us),
		synthetic(1, 3, 2, KindSwitch, "sw:tor", 10*us, 12*us),
		synthetic(2, 4, 0, KindOp, "other-trace", 0, us),
	}
	var b bytes.Buffer
	WriteTree(&b, spans, 1)
	out := b.String()
	for _, want := range []string{"op:read", "send:mem", "sw:tor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "other-trace") {
		t.Fatalf("tree leaked a foreign trace:\n%s", out)
	}
	// The switch span sits two levels deep: more indentation than root.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "sw:tor") && !strings.Contains(line, "    switch") {
			t.Fatalf("sw:tor not indented two levels: %q", line)
		}
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	us := netsim.Time(netsim.Microsecond)
	spans := []*Span{
		synthetic(1, 1, 0, KindOp, "op", 0, 10*us),
		synthetic(1, 2, 1, KindLink, "link", 2*us, 8*us),
	}
	spans[1].SetAttr("queue", "0.00µs")
	var b bytes.Buffer
	if err := WriteChrome(&b, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(b.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[1]["ph"] != "X" || events[1]["name"] != "link" {
		t.Fatalf("event = %+v", events[1])
	}
	args, _ := events[1]["args"].(map[string]any)
	if args["parent"] != "1" || args["queue"] != "0.00µs" {
		t.Fatalf("args = %+v", args)
	}
}

func TestRootAndTraceIDs(t *testing.T) {
	spans := []*Span{
		synthetic(1, 1, 0, KindOp, "a", 0, 1),
		synthetic(1, 2, 1, KindSend, "b", 0, 1),
		synthetic(3, 3, 0, KindOp, "c", 0, 1),
	}
	if ids := TraceIDs(spans); len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("TraceIDs = %v", ids)
	}
	if r := Root(spans, 1); r == nil || r.Name != "a" {
		t.Fatalf("Root(1) = %+v", r)
	}
	if r := Root(spans, 2); r != nil {
		t.Fatal("Root(2) should be nil: span 2 is not a root")
	}
	if got := ByTrace(spans, 1); len(got) != 2 {
		t.Fatalf("ByTrace(1) = %d spans, want 2", len(got))
	}
}

// BenchmarkTrace_RootSpan measures the per-operation cost with
// sampling at 1 (worst case): one root span started and ended.
func BenchmarkTrace_RootSpan(b *testing.B) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 1, MaxSpans: 1 << 30})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartRoot("op:bench")
		sp.End()
	}
}

// BenchmarkTrace_Unsampled measures the fast path a production run
// pays per operation when the recorder exists but the op is sampled
// out — must stay allocation-free.
func BenchmarkTrace_Unsampled(b *testing.B) {
	sim := netsim.NewSim(1)
	r := NewRecorder(sim, Config{SampleEvery: 1 << 30})
	r.StartRoot("op:first") // consume the one sampled op
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartRoot("op:bench")
		sp.End()
	}
}

// BenchmarkTrace_Disabled measures the nil-recorder path every
// instrumentation site pays when tracing is off.
func BenchmarkTrace_Disabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartRoot("op:bench")
		sp2 := r.StartSpan(sp.Ctx(), KindSend, "send")
		sp2.End()
		sp.End()
	}
}
