#!/bin/sh
# checkseam.sh — grep-gate the backend seam.
#
# The Clock/Link seam (internal/backend) only works if the protocol
# stack stays backend-neutral: the packages between the wire and the
# API must reach time and the network exclusively through
# backend.Clock / backend.Link. This script fails CI when a wall-clock
# call or a backend import leaks above the seam.
#
# Two gates:
#
#  1. HOT-PATH PURITY — the packages that run identically on both
#     backends must not import either backend implementation
#     (internal/netsim, internal/realnet) outside _test files. Tests
#     may drive the simulator directly.
#
#  2. WALL-CLOCK CONFINEMENT — no package outside the seam
#     implementations may call the runtime wall clock
#     (time.Now/Since/Sleep/After/AfterFunc/NewTimer/NewTicker/Tick).
#     Pure time *types* and context deadlines (e.g. 10*time.Second)
#     remain fine anywhere. Exceptions, each with a reason:
#       internal/experiments/serialization.go  measures real CPU cost
#                                              of deserialization (the
#                                              point of that table)
#       cmd/gaspbench/output.go                report timestamps plus
#                                              the monotonic reader
#                                              injected into E12's
#                                              sharder-lookup field —
#                                              both stamped outside
#                                              the deterministic run
#
# Run from the repo root: ./scripts/checkseam.sh

set -eu
cd "$(dirname "$0")/.."
fail=0

# Gate 1: backend-neutral packages.
HOT_PKGS="internal/transport internal/coherence internal/discovery
internal/rpc internal/dataplane internal/memproto internal/wire
internal/object internal/store internal/placement internal/trace
internal/telemetry internal/future internal/backend
internal/backend/conformance internal/raft internal/inc"

for pkg in $HOT_PKGS; do
    # shellcheck disable=SC2046
    leaks=$(grep -ln '"repro/internal/netsim"\|"repro/internal/realnet"' \
        $(find "$pkg" -maxdepth 1 -name '*.go' ! -name '*_test.go') \
        2>/dev/null || true)
    if [ -n "$leaks" ]; then
        echo "SEAM LEAK: backend implementation imported above the seam:" >&2
        echo "$leaks" | sed 's/^/  /' >&2
        fail=1
    fi
done

# Gate 2: wall-clock calls outside the seam implementations.
WALL_RE='time\.(Now|Since|Sleep|After|AfterFunc|NewTimer|NewTicker|Tick)\('
ALLOW='^internal/realnet/|^internal/realtest/|^internal/experiments/serialization\.go|^cmd/gaspbench/output\.go'

hits=$(grep -rEn "$WALL_RE" cmd internal examples --include='*.go' \
    | grep -Ev "^($ALLOW)" || true)
if [ -n "$hits" ]; then
    echo "SEAM LEAK: wall-clock call outside internal/realnet (use backend.Clock):" >&2
    echo "$hits" | sed 's/^/  /' >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "checkseam: FAILED — the backend seam has leaks (see above)" >&2
    exit 1
fi
echo "checkseam: OK — protocol stack is backend-neutral, wall clock confined to the seam"
