package main

import (
	"fmt"
	"strings"
	"time"
)

// nowRFC3339 stamps reports after their deterministic body is
// complete.
func nowRFC3339() string { return time.Now().UTC().Format(time.RFC3339) }

// wallStart anchors wallNanos; time.Now carries the monotonic reading,
// so differences of wallNanos values are drift-free intervals.
var wallStart = time.Now()

// wallNanos is the monotonic wall-clock reader injected into the few
// experiment fields that are documented real-CPU measurements (E12's
// sharder_lookup_ns_per_op). Keeping the reader here confines the
// wall clock to this file (checkseam gate 2).
func wallNanos() int64 { return time.Since(wallStart).Nanoseconds() }

// table renders rows either aligned for terminals or as CSV (-csv),
// so every figure regenerates in a plottable form.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) row(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.1f", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, out)
}

func (t *table) print(asCSV bool) {
	if asCSV {
		fmt.Printf("# %s\n", t.title)
		fmt.Println(strings.Join(t.headers, ","))
		for _, r := range t.rows {
			fmt.Println(strings.Join(r, ","))
		}
		return
	}
	fmt.Printf("== %s ==\n", t.title)
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, h := range t.headers {
		fmt.Printf("%-*s  ", widths[i], h)
	}
	fmt.Println()
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Printf("%-*s  ", widths[i], c)
		}
		fmt.Println()
	}
}
