// Command gaspbench regenerates every table and figure in the paper's
// evaluation. Each subcommand prints one experiment's rows; `all` runs
// the full suite (what EXPERIMENTS.md records).
//
// Usage:
//
//	gaspbench fig2          Figure 2: discovery RTT vs % new objects
//	gaspbench fig3          Figure 3: E2E access time vs % moved objects
//	gaspbench capacity      §3.2: switch exact-match table density
//	gaspbench rendezvous    Figure 1: manual/optimized/automatic/local
//	gaspbench serialization §2+§3.1: deserialize vs byte-copy load
//	gaspbench ablations     A1 prefetch, A2 loss, A3 hybrid, A4 CRDT,
//	                        A5 in-network sequencer, A6 overlay routing
//	gaspbench faults        E8: scripted crash/flap/table-wipe recovery
//	gaspbench trace         causal span tree + critical-path breakdown
//	                        of one cold access per discovery scheme
//	gaspbench load          E9: offered-load sweep per discovery scheme
//	                        with saturation-knee detection; writes
//	                        BENCH_load.json
//	gaspbench check         E10: protocol invariant checker — explore
//	                        delivery perturbations per scenario; exits
//	                        nonzero on any invariant violation
//	gaspbench realbench     E11: the identical stack on the simulator
//	                        vs real UDP sockets, side by side (RTT
//	                        classes + a short Poisson sweep)
//	gaspbench raft          E13: replicated control plane — election
//	                        time, commit latency, and availability
//	                        under a leader-kill sweep per replica
//	                        count; writes BENCH_raft.json
//	gaspbench inc           E14: in-network computation on/off pairs —
//	                        switch-resident object cache, multicast
//	                        invalidation, ack aggregation; writes
//	                        BENCH_inc.json
//	gaspbench hotpath       E15: hot-path allocation pins (allocs/op
//	                        per layer, end-to-end coherence ops gated
//	                        at ≤2) and the batched-vs-unbatched
//	                        saturation-knee sweep; writes
//	                        BENCH_hotpath.json
//	gaspbench all           everything above (except trace, load,
//	                        check, realbench, raft, inc, hotpath)
//
// The check subcommand takes its own flags after the command word:
//
//	gaspbench check -seed 7                     explore all scenarios
//	gaspbench check -smoke                      CI sweep (fig2+faults)
//	gaspbench check -scenario fig2 -schedule "drop:8" -seed 7
//	                                            replay a counterexample
//	gaspbench check -buggy                      legacy reassembly bugs
//	                                            restored (self-test)
//
// Flags:
//
//	-seed N       random seed (default 42)
//	-accesses N   accesses per sweep point for fig2/fig3 (default 2000)
//	-quick        reduced workloads (CI-speed)
//	-csv          machine-readable output for plotting
//	-smoke        CI-scale run (load; fig2 under realnet; realbench)
//	-out FILE     load report path (load only, default BENCH_load.json)
//	-backend B    cluster backend: sim (default) or realnet — real
//	              localhost UDP sockets on the wall clock. Only fig2
//	              (E2E side) runs under realnet; sim-only experiments
//	              refuse it with the reason. realbench always runs
//	              both backends.
//
// The realbench subcommand takes its own flags after the command word:
//
//	gaspbench realbench -smoke -cpuprofile real.pprof
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memproto"
	"repro/internal/workload"
)

var (
	seed        = flag.Int64("seed", 42, "random seed")
	accesses    = flag.Int("accesses", 2000, "accesses per sweep point")
	quick       = flag.Bool("quick", false, "reduced workloads")
	csvOut      = flag.Bool("csv", false, "CSV output for plotting")
	smoke       = flag.Bool("smoke", false, "CI-scale run (load, fig2 under realnet, realbench)")
	loadOut     = flag.String("out", "BENCH_load.json", "load report path (load only)")
	backendName = flag.String("backend", "sim", "cluster backend: sim (deterministic simulator) or realnet (localhost UDP sockets)")
)

// backendKind maps -backend; exits on junk.
func backendKind() core.BackendKind {
	switch *backendName {
	case "sim":
		return core.BackendSim
	case "realnet":
		return core.BackendRealnet
	default:
		fmt.Fprintf(os.Stderr, "gaspbench: unknown -backend %q (want sim or realnet)\n", *backendName)
		os.Exit(2)
		panic("unreachable")
	}
}

// simOnly refuses -backend realnet for experiments that depend on
// simulator machinery, naming the reason.
func simOnly(cmd, why string) error {
	if backendKind() == core.BackendRealnet {
		return fmt.Errorf("%s is sim-only: %s (run without -backend realnet)", cmd, why)
	}
	return nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gaspbench [flags] {fig2|fig3|capacity|rendezvous|serialization|ablations|scale|faults|trace|load|check|realbench|raft|inc|hotpath|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	// check and realbench take their own flags after the command word
	// (for check, the replay command a violation report prints is in
	// that form).
	if flag.NArg() < 1 ||
		(flag.Arg(0) != "check" && flag.Arg(0) != "realbench" && flag.Arg(0) != "scale" && flag.Arg(0) != "raft" && flag.Arg(0) != "inc" && flag.Arg(0) != "hotpath" && flag.NArg() != 1) {
		flag.Usage()
		os.Exit(2)
	}
	if *quick {
		*accesses = 300
	}
	cmd := flag.Arg(0)
	// Reasons each sim-only experiment cannot run over real sockets;
	// fig2 and realbench take -backend, capacity is a closed-form model.
	simOnlyReasons := map[string]string{
		"fig3":          "it replays scripted object moves on the simulator's event loop",
		"rendezvous":    "strategy runs are steered by virtual-time scheduling",
		"serialization": "CPU costs are modeled as virtual-time delays",
		"ablations":     "loss injection and switch-table scripting are simulated",
		"scale":         "it programs simulated switch fabrics at varying sizes",
		"faults":        "E8 injects crashes and link flaps into the simulated network",
		"trace":         "span capture depends on deterministic virtual timestamps",
		"load":          "E9's saturation sweep replays seeded schedules on virtual time",
		"check":         "E10 explores deterministic delivery schedules",
		"raft":          "E13 crashes and revives control-plane replicas on the simulated fabric",
		"inc":           "E14 programs INC engines into simulated switch pipelines",
		"hotpath":       "E15 pins allocations and sweeps the saturation knee on the simulator's virtual clock",
		"all":           "the suite includes sim-only experiments",
	}
	var err error
	if why, ok := simOnlyReasons[cmd]; ok {
		err = simOnly(cmd, why)
	}
	if err == nil {
		switch cmd {
		case "fig2":
			err = runFig2()
		case "fig3":
			err = runFig3()
		case "capacity":
			err = runCapacity()
		case "rendezvous":
			err = runRendezvous()
		case "serialization":
			err = runSerialization()
		case "ablations":
			err = runAblations()
		case "scale":
			err = runScale(flag.Args()[1:])
		case "faults":
			err = runFaults()
		case "trace":
			err = runTrace()
		case "load":
			err = runLoad()
		case "check":
			err = runCheck(flag.Args()[1:])
		case "realbench":
			err = runRealbench(flag.Args()[1:])
		case "raft":
			err = runRaft(flag.Args()[1:])
		case "inc":
			err = runInc(flag.Args()[1:])
		case "hotpath":
			err = runHotpath(flag.Args()[1:])
		case "all":
			for _, f := range []func() error{
				runFig2, runFig3, runCapacity, runRendezvous, runSerialization,
				runAblations, func() error { return runScale(nil) }, runFaults, runLoad,
			} {
				if err = f(); err != nil {
					break
				}
				fmt.Println()
			}
		default:
			flag.Usage()
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaspbench:", err)
		os.Exit(1)
	}
}

func runFig2() error {
	cfg := experiments.Fig2Config{
		Seed:             *seed,
		AccessesPerPoint: *accesses,
		Backend:          backendKind(),
	}
	title := "Figure 2: RTT vs % accesses to new objects (E2E vs Controller)"
	if cfg.Backend == core.BackendRealnet {
		title = "Figure 2 over real UDP sockets (E2E only; controller columns n/a)"
		if *smoke || *quick {
			cfg.AccessesPerPoint = 60
			cfg.Points = []int{0, 30, 60}
		}
	}
	rows, err := experiments.Figure2(cfg)
	if err != nil {
		return err
	}
	t := newTable(title,
		"pct_new", "ctrl_mean_us", "ctrl_p99_us", "e2e_mean_us", "e2e_p99_us", "bcast_per_100acc")
	for _, r := range rows {
		t.row(r.PctNew, r.ControllerMeanUS, r.ControllerP99US,
			r.E2EMeanUS, r.E2EP99US, r.BroadcastsPer100)
	}
	t.print(*csvOut)
	return nil
}

func runFig3() error {
	rows, err := experiments.Figure3(experiments.Fig3Config{
		Seed:             *seed,
		AccessesPerPoint: *accesses,
	})
	if err != nil {
		return err
	}
	t := newTable("Figure 3: E2E access time vs % accesses to moved objects",
		"pct_moved", "mean_us", "p50_us", "p90_us", "p99_us", "sd_us",
		"stale_per_acc", "bcast_per_100acc")
	for _, r := range rows {
		t.row(r.PctMoved, r.MeanUS, r.P50US, r.P90US, r.P99US, r.StddevUS,
			fmt.Sprintf("%.2f", r.StaleRetriesPerAccess), r.BroadcastsPer100)
	}
	t.print(*csvOut)
	return nil
}

func runCapacity() error {
	rows := experiments.Capacity()
	t := newTable("§3.2: exact-match table capacity (paper: ~1.8M @64b, ~850K @128b)",
		"key_bits", "entry_bytes", "mem_mib", "model_entries", "achieved_at_scaled", "scaled_mib")
	for _, r := range rows {
		t.row(r.KeyBits, r.EntryBytes, r.MemoryMiB, r.ModelCapacity,
			r.AchievedEntries, r.ScaledMemoryMiB)
	}
	t.print(*csvOut)
	return nil
}

func runRendezvous() error {
	rows, err := experiments.Rendezvous(experiments.RendezvousConfig{Seed: *seed})
	if err != nil {
		return err
	}
	t := newTable("Figure 1: rendezvous of data and compute (inference task)",
		"strategy", "completion_us", "kb_moved", "frames", "executor", "result_ok")
	for _, r := range rows {
		t.row(r.Strategy, r.CompletionUS, r.KBMoved, r.Frames, r.Executor.String(), r.ResultOK)
	}
	t.print(*csvOut)
	if !*csvOut {
		for _, r := range rows {
			fmt.Printf("   %-22s %s\n", r.Strategy+":", r.Description)
		}
	}
	return nil
}

func runSerialization() error {
	rows, err := experiments.Serialization(experiments.SerializationConfig{Seed: *seed})
	if err != nil {
		return err
	}
	t := newTable("§2/§3.1: model loading — deserialize vs byte copy (wall clock)",
		"model", "ser_kb", "obj_kb", "deser_us", "adopt_us", "infer_us",
		"loadfrac_baseline", "loadfrac_ours", "speedup")
	for _, r := range rows {
		t.row(fmt.Sprintf("%dx%d", r.Buckets, r.Dim),
			r.SerializedKB, r.ObjectKB, r.DeserializeUS,
			fmt.Sprintf("%.2f", r.ByteCopyUS), r.InferUS,
			fmt.Sprintf("%.2f", r.LoadFractionBaseline),
			fmt.Sprintf("%.2f", r.LoadFractionOurs), r.Speedup)
	}
	t.print(*csvOut)
	return nil
}

// runScale prints E7 (the small-scale state-vs-traffic tradeoff) and
// then runs E12, the million-object sharded sweep, writing
// BENCH_scale.json. Flags follow the command word.
func runScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	var (
		sseed  = fs.Int64("seed", *seed, "seed (population layout, Zipf schedule)")
		ssmoke = fs.Bool("smoke", *smoke || *quick, "CI scale: 10^4 objects, small fabrics")
		sout   = fs.String("out", "BENCH_scale.json", "E12 report path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.ScaleTradeoff(experiments.ScaleConfig{Seed: *sseed})
	if err != nil {
		return err
	}
	t := newTable("E7: discovery state-vs-traffic tradeoff as the cluster grows (§4)",
		"scheme", "nodes", "object_rules", "fabric_frames_per_acc", "mean_us")
	for _, r := range rows {
		t.row(r.Scheme, r.Nodes, r.ObjectRules, r.FabricFramesPerAccess, r.MeanUS)
	}
	t.print(*csvOut)
	fmt.Println()

	rep, err := experiments.ScaleSweep(experiments.ScaleSweepConfig{
		Seed:      *sseed,
		Smoke:     *ssmoke,
		WallNanos: wallNanos,
	})
	if err != nil {
		return err
	}
	t2 := newTable("E12: sharded homes + aggregated rules at scale (directory bytes, switch rates, knee)",
		"mode", "nodes", "objects", "rules", "rule_cap", "dir_bytes_per_obj",
		"lookup_ns", "hit_rate", "punts", "floods", "evictions", "ops_per_s", "mean_us", "failed")
	for _, r := range rep.Rows {
		t2.row(r.Mode, r.Nodes, r.Objects, r.FilterRulesTotal, r.FilterCapacityEach,
			fmt.Sprintf("%.1f", r.DirectoryBytesPerObj), fmt.Sprintf("%.1f", r.SharderLookupNS),
			fmt.Sprintf("%.3f", r.HitRate), r.MissPunts, r.MissFloods, r.Evictions,
			fmt.Sprintf("%.0f", r.ThroughputOpsPerSec), fmt.Sprintf("%.1f", r.MeanUS), r.Failed)
	}
	t2.print(*csvOut)
	if !*csvOut {
		for _, k := range rep.Knees {
			fmt.Printf("   knee (%s, %d nodes): %d objects at %.0f ops/s — %s\n",
				k.Mode, k.Nodes, k.KneeObjects, k.Throughput, k.Reason)
		}
	}
	// Stamped outside the run so same-seed report bodies stay
	// comparable (sharder_lookup_ns_per_op is wall clock, all else is
	// virtual-time deterministic).
	rep.GeneratedAt = nowRFC3339()
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*sout, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *sout)
	return nil
}

func runFaults() error {
	cfg := experiments.FaultsConfig{Seed: *seed}
	if *quick {
		cfg.Accesses = 120
	}
	rows, err := experiments.FaultRecovery(cfg)
	if err != nil {
		return err
	}
	t := newTable("E8: recovery from scripted crash / link-flap / table-wipe faults (§5)",
		"scheme", "fault", "accesses", "failed", "degraded",
		"mean_us", "p99_us", "max_us", "recovery_us",
		"rtx_mean", "rtx_max", "frames_per_acc", "promoted", "lost")
	for _, r := range rows {
		t.row(r.Scheme, r.Fault, r.Accesses, r.Failures, r.DegradedAccesses,
			fmt.Sprintf("%.1f", r.Latency.Mean), fmt.Sprintf("%.1f", r.Latency.P99),
			fmt.Sprintf("%.1f", r.Latency.Max), fmt.Sprintf("%.1f", r.RecoveryUS),
			fmt.Sprintf("%.2f", r.Retransmits.Mean), fmt.Sprintf("%.0f", r.Retransmits.Max),
			fmt.Sprintf("%.1f", r.FramesPerAccess), r.Promotions, r.Lost)
	}
	t.print(*csvOut)
	return nil
}

func runTrace() error {
	reps, err := experiments.TraceBreakdown(*seed)
	if err != nil {
		return err
	}
	for i, r := range reps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: cold access, hop-by-hop (measured RTT %.2fµs, root span %.2fµs, %d spans)\n",
			r.Scheme, r.MeasuredUS, r.RootUS, r.Spans)
		fmt.Print(r.Tree)
		fmt.Println()
		fmt.Print(r.Breakdown)
	}
	return nil
}

func runLoad() error {
	rep, err := experiments.LoadSweep(experiments.LoadConfig{
		Seed:  *seed,
		Smoke: *smoke || *quick,
	})
	if err != nil {
		return err
	}
	for _, ss := range rep.Schemes {
		t := newTable(fmt.Sprintf("E9 (%s): offered load vs goodput and tail latency", ss.Scheme),
			"offered_ops", "goodput_ops", "completed", "failed", "queued",
			"p50_us", "p99_us", "p999_us", "frames")
		for _, p := range ss.Points {
			t.row(fmt.Sprintf("%.0f", p.OfferedPerSec), fmt.Sprintf("%.0f", p.GoodputPerSec),
				p.Completed, p.Failed, p.Queued,
				fmt.Sprintf("%.1f", p.P50US), fmt.Sprintf("%.1f", p.P99US),
				fmt.Sprintf("%.1f", p.P999US), p.FramesSent)
		}
		t.print(*csvOut)
		if !*csvOut {
			if ss.Knee.Index >= 0 {
				fmt.Printf("   knee: %.0f ops/s offered (goodput %.0f, p99 %.1fµs) — %s\n",
					ss.Knee.OfferedPerSec, ss.Knee.GoodputPerSec, ss.Knee.P99US, ss.Knee.Reason)
			} else {
				fmt.Printf("   knee: %s\n", ss.Knee.Reason)
			}
		}
		fmt.Println()
	}
	// The timestamp is stamped here, outside the deterministic run, so
	// the report body is byte-identical across same-seed invocations.
	rep.GeneratedAt = nowRFC3339()
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*loadOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *loadOut)
	return nil
}

func runAblations() error {
	pf, err := experiments.AblationPrefetch(experiments.PrefetchConfig{Seed: *seed})
	if err != nil {
		return err
	}
	t1 := newTable("A1: reachability prefetch during remote traversal",
		"prefetch", "chain", "total_us", "remote_acquires", "local_hits")
	for _, r := range pf {
		t1.row(r.Prefetch, r.ChainLen, r.TotalUS, r.RemoteAcquires, r.LocalHits)
	}
	t1.print(*csvOut)
	fmt.Println()

	loss, err := experiments.AblationLoss(*seed, 0, nil)
	if err != nil {
		return err
	}
	t2 := newTable("A2: lightweight reliable transport under loss",
		"loss_pct", "completion_us", "retransmits", "delivered")
	for _, r := range loss {
		t2.row(r.LossPct, r.CompletionUS, r.Retransmits, r.Delivered)
	}
	t2.print(*csvOut)
	fmt.Println()

	hy, err := experiments.AblationHybrid(*seed, 0)
	if err != nil {
		return err
	}
	t3 := newTable("A3: discovery under switch-table saturation",
		"scheme", "objects", "table_cap", "successes", "failures", "mean_us", "fallbacks")
	for _, r := range hy {
		t3.row(r.Scheme, r.Objects, r.TableCapacity, r.Successes, r.Failures, r.MeanUS, r.Fallbacks)
	}
	t3.print(*csvOut)
	fmt.Println()

	cr, err := experiments.AblationCRDT(*seed, 0)
	if err != nil {
		return err
	}
	t4 := newTable("A4: CRDT auto-merge during movement",
		"mode", "expected", "final", "lost")
	for _, r := range cr {
		t4.row(r.Mode, r.Expected, r.Final, r.Lost)
	}
	t4.print(*csvOut)
	fmt.Println()

	sq, err := experiments.AblationNetSeq(*seed, 0)
	if err != nil {
		return err
	}
	t5 := newTable("A5: sequencer offload to the programmable network (§5)",
		"mode", "ops", "mean_us", "p99_us", "unique_dense")
	for _, r := range sq {
		t5.row(r.Mode, r.Ops, r.MeanUS, r.P99US, r.UniqueDense)
	}
	t5.print(*csvOut)
	fmt.Println()

	ov, err := experiments.AblationOverlay(*seed, 0)
	if err != nil {
		return err
	}
	t6 := newTable("A6: hierarchical identifier overlay vs exact rules (§3.2)",
		"mode", "objects", "rules_per_sw", "install_failed", "successes", "failures", "mean_us")
	for _, r := range ov {
		t6.row(r.Mode, r.Objects, r.RulesPerSw, r.InstallFailed, r.Successes, r.Failures, r.MeanUS)
	}
	t6.print(*csvOut)
	return nil
}

// runRealbench dispatches E11 from its own flag set: the identical
// measurement program on the simulator and over real UDP sockets,
// side by side.
func runRealbench(args []string) error {
	fs := flag.NewFlagSet("realbench", flag.ExitOnError)
	var (
		rseed    = fs.Int64("seed", *seed, "seed (population layout, sweep schedule)")
		rsmoke   = fs.Bool("smoke", *smoke || *quick, "CI scale: fewer samples, one sweep rate")
		rprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the realnet run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.Realbench(experiments.RealbenchConfig{
		Seed:       *rseed,
		Smoke:      *rsmoke,
		CPUProfile: *rprofile,
	})
	if err != nil {
		return err
	}
	t := newTable("E11: identical stack on the simulator vs real UDP sockets (loopback)",
		"class", "sim_mean_us", "sim_p99_us", "real_mean_us", "real_p99_us", "delta_mean_us")
	for _, r := range res.Rows {
		t.row(r.Label, fmt.Sprintf("%.1f", r.SimMeanUS), fmt.Sprintf("%.1f", r.SimP99US),
			fmt.Sprintf("%.1f", r.RealMeanUS), fmt.Sprintf("%.1f", r.RealP99US),
			fmt.Sprintf("%.1f", r.DeltaMeanUS()))
	}
	t.print(*csvOut)
	fmt.Println()
	t2 := newTable("E11: Poisson sweep, goodput and tail on both backends",
		"rate_per_s", "sim_goodput", "real_goodput", "sim_p99_us", "real_p99_us")
	for _, r := range res.Sweep {
		t2.row(fmt.Sprintf("%.0f", r.RatePerSec),
			fmt.Sprintf("%.0f", r.SimGoodput), fmt.Sprintf("%.0f", r.RealGoodput),
			fmt.Sprintf("%.1f", r.SimP99US), fmt.Sprintf("%.1f", r.RealP99US))
	}
	t2.print(*csvOut)
	if *rprofile != "" {
		fmt.Printf("wrote realnet CPU profile to %s\n", *rprofile)
	}
	return nil
}

// runRaft dispatches E13 from its own flag set: the replicated
// control plane swept over replica counts, writing BENCH_raft.json.
func runRaft(args []string) error {
	fs := flag.NewFlagSet("raft", flag.ExitOnError)
	var (
		rseed  = fs.Int64("seed", *seed, "seed (election jitter, ID allocation)")
		rsmoke = fs.Bool("smoke", *smoke || *quick, "CI scale: replica counts {1,3}, fewer ops/kills")
		rout   = fs.String("out", "BENCH_raft.json", "E13 report path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := experiments.RaftBench(experiments.RaftConfig{
		Seed:  *rseed,
		Smoke: *rsmoke,
	})
	if err != nil {
		return err
	}
	t := newTable("E13: replicated control plane — election, commit latency, leader-kill availability",
		"replicas", "election_us", "commit_mean_us", "commit_p99_us", "reelect_mean_us",
		"sweep_ops", "failed", "avail_pct", "redirects", "elections", "committed", "lost")
	lost := 0
	for _, r := range rep.Rows {
		t.row(r.Replicas, fmt.Sprintf("%.1f", r.ElectionUS),
			fmt.Sprintf("%.1f", r.CommitMeanUS), fmt.Sprintf("%.1f", r.CommitP99US),
			fmt.Sprintf("%.1f", r.ReElectionMeanUS), r.SweepOps, r.SweepFailed,
			fmt.Sprintf("%.1f", r.AvailabilityPct), r.Redirects, r.Elections,
			r.Committed, r.Lost)
		if r.Replicas > 1 {
			lost += r.Lost
		}
	}
	t.print(*csvOut)
	// Stamped outside the run so same-seed report bodies stay
	// byte-identical.
	rep.GeneratedAt = nowRFC3339()
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*rout, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *rout)
	if lost > 0 {
		return fmt.Errorf("raft: %d acknowledged announce(s) lost across replicated rows", lost)
	}
	return nil
}

// runInc dispatches E14 from its own flag set: each in-network
// computation feature measured as an on/off pair over the same seeded
// workload, writing BENCH_inc.json.
func runInc(args []string) error {
	fs := flag.NewFlagSet("inc", flag.ExitOnError)
	var (
		iseed  = fs.Int64("seed", *seed, "seed (Zipf read stream, sharer rounds)")
		ismoke = fs.Bool("smoke", *smoke || *quick, "CI scale: fewer reads and rounds")
		iout   = fs.String("out", "BENCH_inc.json", "E14 report path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := experiments.IncSweep(experiments.IncSweepConfig{
		Seed:  *iseed,
		Smoke: *ismoke,
	})
	if err != nil {
		return err
	}
	t := newTable("E14 (cache): Zipf reads with and without the in-switch object cache",
		"cache", "reads", "mean_us", "p50_us", "p99_us", "switch_hits", "hit_rate")
	for _, r := range rep.Cache {
		t.row(r.Enabled, r.Reads, fmt.Sprintf("%.1f", r.MeanUS), fmt.Sprintf("%.1f", r.P50US),
			fmt.Sprintf("%.1f", r.P99US), r.CacheHits, fmt.Sprintf("%.2f", r.HitRate))
	}
	t.print(*csvOut)
	fmt.Println()
	t2 := newTable("E14 (mcast): invalidation rounds with and without multicast fan-out",
		"mcast", "sharers", "rounds", "home_inv_frames", "frames_saved", "replicated", "fallbacks")
	for _, r := range rep.Mcast {
		t2.row(r.Enabled, r.Sharers, r.Rounds, r.HomeInvFrames, r.FramesSaved,
			r.Replicated, r.Fallbacks)
	}
	t2.print(*csvOut)
	fmt.Println()
	t3 := newTable("E14 (agg): the same rounds with and without in-network ack aggregation",
		"agg", "sharers", "rounds", "acks_at_home", "acks_coalesced", "agg_acks_sent", "agg_timeouts")
	for _, r := range rep.Agg {
		t3.row(r.Enabled, r.Sharers, r.Rounds, r.AcksAtHome, r.AcksCoalesced,
			r.AggAcksSent, r.AggTimeouts)
	}
	t3.print(*csvOut)
	// Stamped outside the run so same-seed report bodies stay
	// byte-identical.
	rep.GeneratedAt = nowRFC3339()
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*iout, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *iout)
	return nil
}

// runHotpath dispatches E15 from its own flag set: per-layer
// allocation pins (the end-to-end coherence read and write are hard-
// gated at ≤2 allocs/op) and the batched-vs-unbatched knee sweep,
// writing BENCH_hotpath.json. A failed gate or a knee that did not
// move right exits nonzero — this is the CI allocation-regression
// tripwire.
func runHotpath(args []string) error {
	fs := flag.NewFlagSet("hotpath", flag.ExitOnError)
	var (
		hseed  = fs.Int64("seed", *seed, "seed (cluster layout, sweep schedule)")
		hsmoke = fs.Bool("smoke", *smoke || *quick, "CI scale: shorter ladder and windows")
		hout   = fs.String("out", "BENCH_hotpath.json", "E15 report path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := experiments.Hotpath(experiments.HotpathConfig{
		Seed:      *hseed,
		Smoke:     *hsmoke,
		WallNanos: wallNanos,
	})
	if err != nil {
		return err
	}
	t := newTable("E15: hot-path allocations per layer (budgets are hard gates)",
		"layer", "allocs_per_op", "wall_ns_per_op", "budget", "pass")
	failed := 0
	for _, r := range rep.Allocs {
		budget := "-"
		if r.Budget >= 0 {
			budget = fmt.Sprintf("%.0f", r.Budget)
		}
		if !r.Pass {
			failed++
		}
		t.row(r.Layer, fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%.0f", r.NsPerOp), budget, r.Pass)
	}
	t.print(*csvOut)
	fmt.Println()
	t2 := newTable("E15: saturation knee, per-frame vs batched delivery (same link speed)",
		"delivery", "offered_ops", "completed", "failed", "p99_us")
	for _, side := range []struct {
		name string
		ss   workload.SchemeSweep
	}{{"per-frame", rep.Unbatched}, {"batched", rep.Batched}} {
		for _, p := range side.ss.Points {
			t2.row(side.name, fmt.Sprintf("%.0f", p.OfferedPerSec), p.Completed,
				p.Failed, fmt.Sprintf("%.1f", p.P99US))
		}
	}
	t2.print(*csvOut)
	if !*csvOut {
		fmt.Printf("   knee (per-frame): idx=%d %.0f ops/s — %s\n",
			rep.Unbatched.Knee.Index, rep.Unbatched.Knee.OfferedPerSec, rep.Unbatched.Knee.Reason)
		fmt.Printf("   knee (batched):   idx=%d %.0f ops/s — %s\n",
			rep.Batched.Knee.Index, rep.Batched.Knee.OfferedPerSec, rep.Batched.Knee.Reason)
		fmt.Printf("   knee moved right: %v\n", rep.KneeMovedRight)
	}
	// Stamped outside the run so same-seed report bodies stay
	// comparable (alloc/ns columns are host measurements, the sweeps
	// are virtual-time deterministic).
	rep.GeneratedAt = nowRFC3339()
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*hout, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *hout)
	if failed > 0 {
		return fmt.Errorf("hotpath: %d allocation gate(s) exceeded their budget", failed)
	}
	if !rep.KneeMovedRight {
		return fmt.Errorf("hotpath: batched knee (idx %d) did not move right of per-frame knee (idx %d)",
			rep.Batched.Knee.Index, rep.Unbatched.Knee.Index)
	}
	return nil
}

// runCheck dispatches E10 from its own flag set (flags follow the
// command word, matching the replay line a violation report prints).
func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var (
		cseed    = fs.Int64("seed", *seed, "scenario seed")
		scenario = fs.String("scenario", "", "single scenario (default: all)")
		schedule = fs.String("schedule", "", "replay this exact schedule (requires -scenario)")
		csmoke   = fs.Bool("smoke", false, "CI sweep: fig2+faults, reduced run budget")
		buggy    = fs.Bool("buggy", false, "restore the legacy reassembly bugs (self-test)")
		runs     = fs.Int("runs", 0, "max perturbed executions per scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *schedule != "" {
		if *scenario == "" {
			return fmt.Errorf("check: -schedule requires -scenario")
		}
		if *buggy {
			prev := memproto.SetLegacyAccounting(true)
			defer memproto.SetLegacyAccounting(prev)
		}
		rep, err := experiments.CheckReplay(*scenario, *cseed, *schedule)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		if !rep.Clean() {
			return fmt.Errorf("check: invariant violation under %q", *schedule)
		}
		return nil
	}
	cfg := experiments.CheckConfig{Seed: *cseed, MaxRuns: *runs, Smoke: *csmoke, Buggy: *buggy}
	if *scenario != "" {
		cfg.Scenarios = []string{*scenario}
	}
	rows, err := experiments.InvariantCheck(cfg)
	if err != nil {
		return err
	}
	t := newTable("E10: protocol invariant checker — bounded schedule exploration",
		"scenario", "runs", "frames", "verdict", "schedule", "violations")
	dirty := 0
	for _, r := range rows {
		verdict := "clean"
		if !r.Clean {
			verdict = "VIOLATION"
			dirty++
		}
		t.row(r.Scenario, r.Runs, r.Frames, verdict, r.Schedule, r.Violations)
	}
	t.print(*csvOut)
	for _, r := range rows {
		if !r.Clean {
			fmt.Println()
			fmt.Print(r.Report)
		}
	}
	if dirty > 0 {
		return fmt.Errorf("check: %d scenario(s) violated protocol invariants", dirty)
	}
	return nil
}
