// Command gaspsh is an interactive shell over a simulated global
// object space: create objects, write and read through references,
// migrate homes, resolve names, and watch the fabric's counters — a
// playground for the programming model. Commands come from stdin, so
// it scripts cleanly:
//
//	echo 'create n0 128
//	      write 0 hello-world
//	      read 1 0
//	      move 0 n2
//	      read 1 0
//	      stats' | go run ./cmd/gaspsh
//
// Commands:
//
//	create NODE SIZE      create an object homed at NODE (n0, n1, ...)
//	write IDX TEXT        write TEXT into object #IDX (through any node)
//	read NODE IDX         read object #IDX from NODE
//	move IDX NODE         migrate object #IDX's home to NODE
//	bind PATH IDX         name object #IDX in the namespace
//	resolve NODE PATH     resolve PATH from NODE and read the target
//	objects               list created objects
//	stats                 network and switch counters
//	help                  this list
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/namespace"
	"repro/internal/object"
)

type shell struct {
	cluster *core.Cluster
	ns      *namespace.Namespace
	objects []shObject
	out     *bufio.Writer
}

type shObject struct {
	ref  object.Global
	slot uint64 // payload slot (length-prefixed bytes)
	home int
}

func main() {
	c, err := core.NewCluster(core.Config{Seed: 1, Scheme: core.SchemeE2E})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaspsh:", err)
		os.Exit(1)
	}
	ns, err := namespace.Create(c.Node(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gaspsh:", err)
		os.Exit(1)
	}
	sh := &shell{cluster: c, ns: ns, out: bufio.NewWriter(os.Stdout)}
	defer sh.out.Flush()

	fmt.Fprintf(sh.out, "gaspsh: %d nodes, %d switches, scheme %s — 'help' for commands\n",
		len(c.Nodes), len(c.Switches), core.SchemeE2E)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		sh.exec(strings.Fields(line))
		sh.out.Flush()
	}
}

// node parses "n0".."nK" or a bare index.
func (sh *shell) node(s string) (*core.Node, int, error) {
	s = strings.TrimPrefix(s, "n")
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= len(sh.cluster.Nodes) {
		return nil, 0, fmt.Errorf("no such node %q (have n0..n%d)", s, len(sh.cluster.Nodes)-1)
	}
	return sh.cluster.Node(i), i, nil
}

func (sh *shell) object(s string) (*shObject, int, error) {
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= len(sh.objects) {
		return nil, 0, fmt.Errorf("no such object #%s (have %d)", s, len(sh.objects))
	}
	return &sh.objects[i], i, nil
}

func (sh *shell) errf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, "error: "+format+"\n", args...)
}

func (sh *shell) exec(args []string) {
	if len(args) == 0 {
		return
	}
	switch args[0] {
	case "help":
		fmt.Fprint(sh.out, `commands:
  create NODE SIZE   |  write IDX TEXT  |  read NODE IDX
  move IDX NODE      |  bind PATH IDX   |  resolve NODE PATH
  objects            |  stats           |  quit
`)
	case "create":
		if len(args) != 3 {
			sh.errf("usage: create NODE SIZE")
			return
		}
		n, ni, err := sh.node(args[1])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		size, err := strconv.Atoi(args[2])
		if err != nil {
			sh.errf("bad size %q", args[2])
			return
		}
		if size < 2048 {
			size = 2048 // header + FOT minimum plus payload room
		}
		o, err := n.CreateObject(size)
		if err != nil {
			sh.errf("%v", err)
			return
		}
		slot, err := o.AllocBytes(make([]byte, 0))
		if err != nil {
			sh.errf("%v", err)
			return
		}
		// Reserve payload room after the empty prefix.
		if _, err := o.Alloc(256, 8); err != nil {
			sh.errf("%v", err)
			return
		}
		sh.cluster.Run()
		sh.objects = append(sh.objects, shObject{
			ref: object.Global{Obj: o.ID()}, slot: slot, home: ni,
		})
		fmt.Fprintf(sh.out, "#%d = %s @ n%d (%dB)\n", len(sh.objects)-1, o.ID().Short(), ni, size)
	case "write":
		if len(args) < 3 {
			sh.errf("usage: write IDX TEXT")
			return
		}
		obj, idx, err := sh.object(args[1])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		text := strings.Join(args[2:], " ")
		if len(text) > 248 {
			sh.errf("text too long (max 248)")
			return
		}
		// Length prefix + bytes through the coherent write path.
		payload := make([]byte, 8+len(text))
		payload[0] = byte(len(text))
		copy(payload[8:], text)
		done := false
		sh.cluster.Node(0).WriteRef(object.Global{Obj: obj.ref.Obj, Off: obj.slot}, payload,
			func(err error) {
				if err != nil {
					sh.errf("write: %v", err)
				} else {
					fmt.Fprintf(sh.out, "wrote %dB to #%d\n", len(text), idx)
				}
				done = true
			})
		sh.cluster.Run()
		if !done {
			sh.errf("write stalled")
		}
	case "read":
		if len(args) != 3 {
			sh.errf("usage: read NODE IDX")
			return
		}
		n, ni, err := sh.node(args[1])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		obj, idx, err := sh.object(args[2])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		start := sh.cluster.Sim.Now()
		done := false
		n.ReadRef(object.Global{Obj: obj.ref.Obj, Off: obj.slot}, 256, func(b []byte, err error) {
			if err != nil {
				sh.errf("read: %v", err)
			} else {
				ln := int(b[0])
				fmt.Fprintf(sh.out, "n%d read #%d: %q (%v)\n",
					ni, idx, string(b[8:8+ln]), sh.cluster.Sim.Now().Sub(start))
			}
			done = true
		})
		sh.cluster.Run()
		if !done {
			sh.errf("read stalled")
		}
	case "move":
		if len(args) != 3 {
			sh.errf("usage: move IDX NODE")
			return
		}
		obj, idx, err := sh.object(args[1])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		dst, di, err := sh.node(args[2])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		if di == obj.home {
			fmt.Fprintf(sh.out, "#%d already at n%d\n", idx, di)
			return
		}
		if err := sh.cluster.MoveObject(obj.ref.Obj, sh.cluster.Node(obj.home), dst); err != nil {
			sh.errf("move: %v", err)
			return
		}
		obj.home = di
		sh.cluster.Run()
		fmt.Fprintf(sh.out, "#%d moved to n%d (byte copy; references unchanged)\n", idx, di)
	case "bind":
		if len(args) != 3 {
			sh.errf("usage: bind PATH IDX")
			return
		}
		obj, idx, err := sh.object(args[2])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		done := false
		sh.ns.Bind(args[1], object.Global{Obj: obj.ref.Obj, Off: obj.slot}, func(err error) {
			if err != nil {
				sh.errf("bind: %v", err)
			} else {
				fmt.Fprintf(sh.out, "bound /%s -> #%d\n", strings.Trim(args[1], "/"), idx)
			}
			done = true
		})
		sh.cluster.Run()
		if !done {
			sh.errf("bind stalled")
		}
	case "resolve":
		if len(args) != 3 {
			sh.errf("usage: resolve NODE PATH")
			return
		}
		n, ni, err := sh.node(args[1])
		if err != nil {
			sh.errf("%v", err)
			return
		}
		ns := namespace.Attach(n, sh.ns)
		done := false
		ns.Resolve(args[2], func(ref object.Global, _ byte, err error) {
			if err != nil {
				sh.errf("resolve: %v", err)
				done = true
				return
			}
			n.ReadRef(ref, 256, func(b []byte, rerr error) {
				if rerr != nil {
					sh.errf("read target: %v", rerr)
				} else {
					ln := int(b[0])
					fmt.Fprintf(sh.out, "n%d resolved /%s -> %s: %q\n",
						ni, strings.Trim(args[2], "/"), ref.Obj.Short(), string(b[8:8+ln]))
				}
				done = true
			})
		})
		sh.cluster.Run()
		if !done {
			sh.errf("resolve stalled")
		}
	case "objects":
		for i, o := range sh.objects {
			fmt.Fprintf(sh.out, "#%d %s @ n%d\n", i, o.ref.Obj.Short(), o.home)
		}
	case "stats":
		st := sh.cluster.Stats()
		fmt.Fprintf(sh.out, "network: sent=%d delivered=%d dropped=%d bytes=%d\n",
			st.Network.FramesSent, st.Network.FramesDelivered,
			st.Network.FramesDropped, st.Network.BytesDelivered)
		for i, sw := range st.Switches {
			fmt.Fprintf(sh.out, "switch %d: in=%d out=%d flood=%d objhit=%d stationhit=%d\n",
				i, sw.FramesIn, sw.FramesOut, sw.Flooded, sw.ObjectHits, sw.StationHits)
		}
		fmt.Fprintf(sh.out, "virtual time: %v\n", sh.cluster.Sim.Now().Sub(0))
	default:
		sh.errf("unknown command %q ('help' lists commands)", args[0])
	}
}
